#include "src/sim/hyperperiod.h"

#include <cmath>
#include <cstring>
#include <numeric>

#include "src/util/check.h"
#include "src/util/time_eps.h"

namespace rtdvs {

namespace {

// Recording cap per window: a candidate whose window needs more steps than
// this is not worth memoizing (the recording itself would dominate), so the
// memo disarms instead of growing without bound.
constexpr size_t kMaxRecordedSteps = 1u << 16;

bool SameBits(double a, double b) {
  uint64_t ua, ub;
  std::memcpy(&ua, &a, sizeof(ua));
  std::memcpy(&ub, &b, sizeof(ub));
  return ua == ub;
}

}  // namespace

bool HyperperiodMemo::OnDyadicGrid(double v) {
  if (!(v >= 0.0) || v > kMaxExactMagnitudeMs) {
    return false;
  }
  const double scaled = v * kDyadicGridPerMs;  // exact: magnitude <= 2^43
  return scaled == std::floor(scaled);
}

bool HyperperiodMemo::IsExactFrequency(double f) {
  if (!(f > 0.0) || f > 1.0) {
    return false;
  }
  int exponent = 0;
  return std::frexp(f, &exponent) == 0.5 && exponent >= -9;  // f >= 2^-10
}

std::optional<double> HyperperiodMemo::HyperperiodMs(const TaskSet& tasks,
                                                     int64_t max_units) {
  int64_t lcm_units = 1;
  for (int id = 0; id < tasks.size(); ++id) {
    const double period_units = tasks.task(id).period_ms * kDyadicGridPerMs;
    const auto p = static_cast<int64_t>(std::llround(period_units));
    if (p <= 0 || period_units != static_cast<double>(p)) {
      return std::nullopt;  // off the dyadic grid
    }
    const int64_t g = std::gcd(lcm_units, p);
    const int64_t stride = lcm_units / g;
    if (stride > max_units / p) {
      return std::nullopt;  // LCM over the bound
    }
    lcm_units = stride * p;
  }
  // Exact: an integer under 2^53 divided by a power of two.
  return static_cast<double>(lcm_units) / kDyadicGridPerMs;
}

void HyperperiodMemo::Arm(double hyperperiod_ms, double horizon_ms,
                          FastPathStats* stats) {
  RTDVS_CHECK(mode_ == Mode::kOff);
  RTDVS_CHECK_GT(hyperperiod_ms, 0.0);
  RTDVS_CHECK(stats != nullptr);
  mode_ = Mode::kWarmup;
  h_ms_ = hyperperiod_ms;
  horizon_ms_ = horizon_ms;
  window_start_ = 0;
  next_boundary_ = hyperperiod_ms;
  stats_ = stats;
}

void HyperperiodMemo::Window::Clear() {
  steps.clear();
  effects.clear();
  speed_requests.clear();
}

bool HyperperiodMemo::Window::BitwiseEqual(const Window& other) const {
  if (steps.size() != other.steps.size() ||
      effects.size() != other.effects.size() ||
      speed_requests != other.speed_requests) {
    return false;
  }
  for (size_t i = 0; i < steps.size(); ++i) {
    const Step& a = steps[i];
    const Step& b = other.steps[i];
    if (!SameBits(a.offset_ms, b.offset_ms) || a.pick_task != b.pick_task ||
        a.effects_begin != b.effects_begin || a.effects_end != b.effects_end ||
        a.speed_begin != b.speed_begin || a.speed_end != b.speed_end) {
      return false;
    }
  }
  for (size_t i = 0; i < effects.size(); ++i) {
    if (effects[i].field != other.effects[i].field ||
        !SameBits(effects[i].value, other.effects[i].value)) {
      return false;
    }
  }
  return true;
}

void HyperperiodMemo::Disarm(const char* reason, DvsPolicy* policy,
                             ModeledSpeedController* speed) {
  mode_ = Mode::kDone;
  stats_->hyperperiod_gate = reason;
  policy->set_counter_tap(nullptr);
  speed->set_request_tap(nullptr);
}

void HyperperiodMemo::BeginWindow(size_t index, double start_ms,
                                  DvsPolicy* policy,
                                  ModeledSpeedController* speed) {
  recording_index_ = index;
  win_[index].Clear();
  policy->set_counter_tap(&win_[index].effects);
  speed->set_request_tap(&win_[index].speed_requests);
  window_start_ = start_ms;
  next_boundary_ = start_ms + h_ms_;
  effects_mark_ = 0;
  speed_mark_ = 0;
}

void HyperperiodMemo::ReplayStep(double now_ms, int pick_task,
                                 DvsPolicy* policy,
                                 ModeledSpeedController* speed,
                                 const MachineSpec& machine) {
  const Window& window = win_[1];
  RTDVS_CHECK_LT(replay_step_, window.steps.size())
      << "hyperperiod replay ran past its recorded window at t=" << now_ms;
  const Step& step = window.steps[replay_step_];
  // Fail stop, never fail wrong: a divergence here means the verified
  // repetition broke down in a later window (the policy already missed its
  // callbacks, so the run cannot be resumed on the stepped path). The
  // bitwise two-window verification makes this unreachable for the
  // exact-arithmetic workloads that engage replay.
  RTDVS_CHECK(SameBits(now_ms - window_start_, step.offset_ms))
      << "hyperperiod replay time diverged from the verified recording: step "
      << replay_step_ << " expected offset " << step.offset_ms << " got "
      << (now_ms - window_start_);
  RTDVS_CHECK_EQ(pick_task, step.pick_task)
      << "hyperperiod replay schedule diverged from the verified recording "
         "at t="
      << now_ms;
  for (uint32_t i = step.effects_begin; i < step.effects_end; ++i) {
    policy->ApplyCounterEffect(window.effects[i]);
  }
  for (uint32_t i = step.speed_begin; i < step.speed_end; ++i) {
    speed->SetOperatingPoint(
        machine.points()[static_cast<size_t>(window.speed_requests[i])]);
  }
  ++replay_step_;
  stats_->steps_replayed += 1;
}

HyperperiodMemo::StepAction HyperperiodMemo::OnStepEnd(
    double now_ms, int pick_task, DvsPolicy* policy,
    ModeledSpeedController* speed) {
  // Finalize the step record first: the step that lands on a boundary is the
  // closing step of the window being recorded, taps still bound to it.
  if (mode_ == Mode::kRecordFirst || mode_ == Mode::kRecordSecond) {
    Window& window = win_[recording_index_];
    if (window.steps.size() >= kMaxRecordedSteps) {
      Disarm("hyperperiod window exceeds the recording cap", policy, speed);
      return StepAction::kNone;
    }
    Step step;
    step.offset_ms = now_ms - window_start_;
    step.pick_task = pick_task;
    step.effects_begin = effects_mark_;
    step.effects_end = static_cast<uint32_t>(window.effects.size());
    step.speed_begin = speed_mark_;
    step.speed_end = static_cast<uint32_t>(window.speed_requests.size());
    effects_mark_ = step.effects_end;
    speed_mark_ = step.speed_end;
    window.steps.push_back(step);
  }

  if (now_ms < next_boundary_ - kTimeEpsMs) {
    return StepAction::kNone;  // still inside the window
  }
  if (now_ms > next_boundary_ + kTimeEpsMs) {
    // No step landed on the boundary: some event jumped it (horizon clamp,
    // drifting release arithmetic). Repetition is unverifiable, stop trying.
    Disarm("no step landed on a hyperperiod boundary", policy, speed);
    return StepAction::kNone;
  }

  switch (mode_) {
    case Mode::kWarmup:
      BeginWindow(0, now_ms, policy, speed);
      mode_ = Mode::kRecordFirst;
      break;
    case Mode::kRecordFirst:
      BeginWindow(1, now_ms, policy, speed);
      mode_ = Mode::kRecordSecond;
      break;
    case Mode::kRecordSecond:
      policy->set_counter_tap(nullptr);
      speed->set_request_tap(nullptr);
      if (!win_[0].BitwiseEqual(win_[1])) {
        Disarm("consecutive hyperperiod windows not bitwise identical",
               policy, speed);
        break;
      }
      stats_->hyperperiod_cycles_verified += 2;
      if (now_ms + h_ms_ < horizon_ms_ - kTimeEpsMs) {
        // Replay only windows that end strictly before the horizon: the
        // closing step of a horizon-clamped window would break out of the
        // loop before its callbacks, which the recording cannot express.
        mode_ = Mode::kReplay;
        replay_step_ = 0;
        window_start_ = now_ms;
        next_boundary_ = now_ms + h_ms_;
      } else {
        mode_ = Mode::kDone;  // verified, but no whole window left
      }
      break;
    case Mode::kReplay:
      RTDVS_CHECK_EQ(replay_step_, win_[1].steps.size())
          << "hyperperiod replay window closed early at t=" << now_ms;
      stats_->hyperperiod_cycles_replayed += 1;
      if (now_ms + h_ms_ < horizon_ms_ - kTimeEpsMs) {
        replay_step_ = 0;
        window_start_ = now_ms;
        next_boundary_ = now_ms + h_ms_;
      } else {
        mode_ = Mode::kDone;
        return StepAction::kResyncPolicy;
      }
      break;
    case Mode::kOff:
    case Mode::kDone:
      break;
  }
  return StepAction::kNone;
}

}  // namespace rtdvs
