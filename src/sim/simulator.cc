#include "src/sim/simulator.h"

#include <algorithm>
#include <limits>

#include "src/cpu/lower_bound.h"
#include "src/util/check.h"
#include "src/util/strings.h"
#include "src/util/time_eps.h"

namespace rtdvs {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

// SpeedController implementation: counts transitions, models the mandatory
// halt interval, and records trace events.
class Simulator::Speed : public SpeedController {
 public:
  explicit Speed(Simulator* sim) : sim_(sim), point_(sim->machine_.max_point()) {}

  void SetOperatingPoint(const OperatingPoint& point) override {
    // Validate that policies only request points that exist on this machine.
    sim_->machine_.IndexOf(point);
    if (point == point_) {
      return;
    }
    point_ = point;
    ++sim_->result_.speed_switches;
    if (sim_->options_.switch_time_ms > 0) {
      blocked_until_ =
          std::max(blocked_until_, sim_->now_ + sim_->options_.switch_time_ms);
    }
    if (sim_->options_.record_trace) {
      sim_->result_.trace.AddEvent(
          {sim_->now_, TraceEventKind::kSpeedChange, -1, point_});
    }
  }

  const OperatingPoint& current() const override { return point_; }

  Simulator* sim_;
  OperatingPoint point_;
  // Execution resumes only after this time (mandatory stop interval, §4.1).
  double blocked_until_ = 0;
};

Simulator::Simulator(TaskSet tasks, MachineSpec machine, DvsPolicy* policy,
                     ExecTimeModel* exec_model, SimOptions options)
    : tasks_(std::move(tasks)),
      machine_(std::move(machine)),
      policy_(policy),
      exec_model_(exec_model),
      options_(options),
      scheduler_(MakeScheduler(policy->scheduler_kind())),
      energy_(options.idle_level, options.energy_coefficient),
      rng_(options.seed) {
  RTDVS_CHECK(policy_ != nullptr);
  RTDVS_CHECK(exec_model_ != nullptr);
  RTDVS_CHECK_GT(options_.horizon_ms, 0.0);
  RTDVS_CHECK(!tasks_.empty()) << "cannot simulate an empty task set";
  RTDVS_CHECK_GE(options_.switch_time_ms, 0.0);
  if (options_.aperiodic.kind != ServerKind::kNone) {
    // The server is an ordinary periodic task as far as schedulers,
    // schedulability tests and DVS policies are concerned.
    server_task_id_ = tasks_.AddTask({"server", options_.aperiodic.period_ms,
                                      options_.aperiodic.budget_ms, 0.0});
    aperiodic_.emplace(options_.aperiodic, options_.seed ^ 0xa9e210d1cULL);
  }
}

Simulator::~Simulator() = default;

double Simulator::NextReleaseTime() const {
  double t = kInf;
  for (const auto& state : task_states_) {
    t = std::min(t, state.next_release_ms);
  }
  return t;
}

double Simulator::EarliestActiveDeadlineAfter(double now) const {
  double t = kInf;
  for (const auto& job : jobs_) {
    if (!job.finished && job.deadline_ms > now + kTimeEpsMs) {
      t = std::min(t, job.deadline_ms);
    }
  }
  return t;
}

double Simulator::EffectiveRemaining(const Job& job) const {
  if (IsServerJob(job)) {
    return aperiodic_->ServableWork();
  }
  return job.RemainingActualWork();
}

void Simulator::FinalizeJobCompletion(Job* job, double now) {
  job->finished = true;
  job->completion_ms = now;
  if (IsServerJob(*job)) {
    // What the server actually consumed is what DVS bookkeeping (cc_i in
    // ccEDF) may reclaim until the next replenishment.
    job->actual_work = job->executed_work;
  }
  auto& stats = result_.task_stats[static_cast<size_t>(job->task_id)];
  ++stats.completions;
  ++result_.completions;
  double response = now - job->release_ms;
  stats.total_response_ms += response;
  stats.max_response_ms = std::max(stats.max_response_ms, response);
  task_states_[static_cast<size_t>(job->task_id)].last_actual_work = job->actual_work;
  if (options_.record_trace) {
    result_.trace.AddEvent({now, TraceEventKind::kCompletion, job->task_id, {}});
  }
}

bool Simulator::MaybeCompleteServerJob(Job* job, double now) {
  if (job->finished) {
    return false;
  }
  switch (options_.aperiodic.kind) {
    case ServerKind::kPolling:
      // The polling server forfeits its remaining budget the moment it has
      // nothing to serve.
      if (aperiodic_->QueueEmpty() || aperiodic_->budget_remaining() <= kWorkEps) {
        aperiodic_->ForfeitBudget();
        FinalizeJobCompletion(job, now);
        return true;
      }
      break;
    case ServerKind::kDeferrable:
      // The deferrable server keeps unused budget until its deadline.
      if (aperiodic_->budget_remaining() <= kWorkEps) {
        FinalizeJobCompletion(job, now);
        return true;
      }
      break;
    case ServerKind::kCbs:
      // The CBS activation ends when the queue drains; budget exhaustion
      // postpones the deadline instead (handled in the event loop).
      if (aperiodic_->QueueEmpty()) {
        FinalizeJobCompletion(job, now);
        return true;
      }
      break;
    case ServerKind::kNone:
      break;
  }
  return false;
}

void Simulator::ReleaseDueJobs(double now, std::vector<int>* released) {
  for (int id = 0; id < tasks_.size(); ++id) {
    auto& state = task_states_[static_cast<size_t>(id)];
    const Task& task = tasks_.task(id);
    while (state.next_release_ms <= now + kTimeEpsMs) {
      double fraction = 1.0;
      if (id != server_task_id_) {
        fraction = exec_model_->DrawFraction(id, state.next_invocation, rng_);
      } else {
        aperiodic_->Replenish();
      }
      RTDVS_CHECK_GT(fraction, 0.0);
      if (fraction > 1.0 + kWorkEps) {
        // Overrun-permitting models (ColdStartModel) void the guarantee;
        // the audit's RT oracle keys off this counter.
        ++result_.wcet_overruns;
      }
      Job job;
      job.task_id = id;
      job.invocation = state.next_invocation;
      job.release_ms = state.next_release_ms;
      job.deadline_ms = state.next_release_ms + task.period_ms;
      job.wcet_work = task.wcet_ms;
      job.actual_work = fraction * task.wcet_ms;
      jobs_.push_back(job);
      ++state.next_invocation;
      state.next_release_ms += task.period_ms;
      ++result_.releases;
      ++result_.task_stats[static_cast<size_t>(id)].releases;
      if (options_.record_trace) {
        result_.trace.AddEvent({job.release_ms, TraceEventKind::kRelease, id, {}});
      }
      released->push_back(id);
    }
  }
}

void Simulator::BuildContext(double now) {
  ctx_.now_ms = now;
  ctx_.tasks = &tasks_;
  ctx_.machine = &machine_;
  // Wall-clock totals for utilization-feedback policies. The kernel layer
  // has always populated these (kernel.cc); the simulator did not, so the
  // interval baseline measured zero work per window and decayed to the
  // minimum frequency regardless of load — found by differential testing
  // against the reference simulator (tests/sim/differential_test.cc).
  ctx_.cumulative_busy_ms = result_.busy_ms;
  ctx_.cumulative_idle_ms = result_.idle_ms;
  ctx_.cumulative_work = result_.total_work_executed;
  ctx_.views.resize(static_cast<size_t>(tasks_.size()));
  for (int id = 0; id < tasks_.size(); ++id) {
    auto& view = ctx_.views[static_cast<size_t>(id)];
    const auto& state = task_states_[static_cast<size_t>(id)];
    view.has_active_job = false;
    view.next_deadline_ms = state.next_release_ms;
    view.executed_in_invocation = 0;
    view.worst_case_remaining = 0;
    view.cumulative_executed = state.cumulative_executed;
    view.last_actual_work = state.last_actual_work;
  }
  // Earliest unfinished job per task defines the "current invocation".
  // Track the chosen job's release explicitly: comparing a candidate's
  // release against the chosen DEADLINE happens to work for strictly
  // periodic jobs (deadline = release + period) but resolves wrongly for
  // backlogged tasks under MissPolicy::kContinueLate and for CBS
  // replacement jobs, whose release/deadline ordering differs.
  chosen_release_.assign(static_cast<size_t>(tasks_.size()), kInf);
  for (const auto& job : jobs_) {
    if (job.finished) {
      continue;
    }
    auto& view = ctx_.views[static_cast<size_t>(job.task_id)];
    double& chosen = chosen_release_[static_cast<size_t>(job.task_id)];
    if (!view.has_active_job || job.release_ms < chosen) {
      view.has_active_job = true;
      chosen = job.release_ms;
      view.next_deadline_ms = job.deadline_ms;
      view.executed_in_invocation = job.executed_work;
      view.worst_case_remaining = job.RemainingWorstCaseWork();
    }
  }
}

SimResult Simulator::Run() {
  RTDVS_CHECK(!ran_) << "Simulator::Run may be called once";
  ran_ = true;
  // Counters accumulate over the policy's lifetime and the policy object may
  // be reused across runs; report the per-run delta.
  const PolicyCounters counters_at_start = policy_->counters();

  const int n = tasks_.size();
  task_states_.assign(static_cast<size_t>(n), TaskState{});
  result_.task_stats.assign(static_cast<size_t>(n), TaskStats{});
  for (int id = 0; id < n; ++id) {
    task_states_[static_cast<size_t>(id)].next_release_ms = tasks_.task(id).phase_ms;
    task_states_[static_cast<size_t>(id)].last_actual_work = tasks_.task(id).wcet_ms;
  }
  if (options_.aperiodic.kind == ServerKind::kCbs) {
    // A CBS has no periodic releases; its activations are created by the
    // wake/postpone rules in the event loop.
    task_states_[static_cast<size_t>(server_task_id_)].next_release_ms = kInf;
  }
  result_.policy_name = policy_->name();
  result_.scheduler = policy_->scheduler_kind();
  result_.horizon_ms = options_.horizon_ms;
  result_.residency.clear();
  for (const auto& point : machine_.points()) {
    result_.residency.push_back(PointResidency{point, 0, 0, 0, 0});
  }
  result_.trace.set_capacity_limit(options_.max_trace_segments);

  speed_ = std::make_unique<Speed>(this);
  now_ = 0;

  BuildContext(now_);
  policy_->OnStart(ctx_, *speed_);
  std::optional<double> wakeup = policy_->NextWakeupMs(ctx_);

  int64_t previous_running_invocation = -1;
  int previous_running_task = -1;
  bool was_idle = false;

  while (now_ < options_.horizon_ms - kTimeEpsMs) {
    // A server job holding budget with an empty queue is not runnable.
    if (aperiodic_.has_value()) {
      for (auto& job : jobs_) {
        if (IsServerJob(job) && !job.finished) {
          job.suspended = EffectiveRemaining(job) <= kWorkEps;
        }
      }
    }
    size_t running = scheduler_->PickJob(jobs_, tasks_);

    // Preemption accounting: a different unfinished job takes over while the
    // previous one still has work left.
    if (running != Scheduler::kNone) {
      const Job& job = jobs_[running];
      if (previous_running_task >= 0 &&
          (job.task_id != previous_running_task ||
           job.invocation != previous_running_invocation)) {
        // Was the previously running job still unfinished?
        for (const auto& other : jobs_) {
          if (other.task_id == previous_running_task &&
              other.invocation == previous_running_invocation && !other.finished) {
            ++result_.preemptions;
            break;
          }
        }
      }
      previous_running_task = job.task_id;
      previous_running_invocation = job.invocation;
    }

    // --- Find the next event. ---
    double t_next = options_.horizon_ms;
    t_next = std::min(t_next, NextReleaseTime());
    t_next = std::min(t_next, EarliestActiveDeadlineAfter(now_));
    if (wakeup.has_value() && *wakeup > now_ + kTimeEpsMs) {
      t_next = std::min(t_next, *wakeup);
    }
    if (aperiodic_.has_value() && aperiodic_->NextArrivalMs() > now_ + kTimeEpsMs) {
      t_next = std::min(t_next, aperiodic_->NextArrivalMs());
    }
    double exec_start = now_;
    if (running != Scheduler::kNone) {
      exec_start = std::max(now_, speed_->blocked_until_);
      double frequency = speed_->current().frequency;
      double completion =
          exec_start + EffectiveRemaining(jobs_[running]) / frequency;
      t_next = std::min(t_next, completion);
    }
    RTDVS_CHECK_GT(t_next, now_ - kTimeEpsMs)
        << "event horizon moved backwards at t=" << now_;
    t_next = std::max(t_next, now_);
    t_next = std::min(t_next, options_.horizon_ms);

    // --- Integrate the segment [now_, t_next). ---
    const OperatingPoint point = speed_->current();
    if (running != Scheduler::kNone) {
      exec_start = std::min(std::max(exec_start, now_), t_next);
      double switch_dt = exec_start - now_;
      if (switch_dt > 0) {
        // Halted during a transition: time passes, (almost) no energy (§3.1).
        result_.switching_ms += switch_dt;
        if (options_.record_trace) {
          result_.trace.AddSegment({now_, exec_start, CpuState::kSwitching, -1, point});
        }
      }
      double exec_dt = t_next - exec_start;
      if (exec_dt > 0) {
        Job& job = jobs_[running];
        double work = exec_dt * point.frequency;
        // Rounding guard: never execute more than the job has left.
        work = std::min(work, EffectiveRemaining(job));
        if (IsServerJob(job)) {
          aperiodic_->Execute(work, t_next, point.frequency);
        }
        job.executed_work += work;
        task_states_[static_cast<size_t>(job.task_id)].cumulative_executed += work;
        result_.task_stats[static_cast<size_t>(job.task_id)].executed_work += work;
        result_.total_work_executed += work;
        result_.busy_ms += exec_dt;
        double joules = energy_.ExecutionEnergy(work, point);
        result_.exec_energy += joules;
        auto& res = result_.residency[machine_.IndexOf(point)];
        res.exec_ms += exec_dt;
        res.exec_energy += joules;
        if (options_.record_trace) {
          result_.trace.AddSegment(
              {exec_start, t_next, CpuState::kExecuting, job.task_id, point});
        }
      }
    } else {
      // The mandatory halt applies on the idle path too: an OnIdle (or
      // completion-time) speed change with switch_time_ms > 0 halts the
      // processor just as it does before execution resumes. Charge the halt
      // window to switching_ms — not idle energy at the new point.
      double halt_end = std::clamp(speed_->blocked_until_, now_, t_next);
      double switch_dt = halt_end - now_;
      if (switch_dt > 0) {
        result_.switching_ms += switch_dt;
        if (options_.record_trace) {
          result_.trace.AddSegment({now_, halt_end, CpuState::kSwitching, -1, point});
        }
      }
      double idle_dt = t_next - halt_end;
      if (idle_dt > 0) {
        result_.idle_ms += idle_dt;
        double joules = energy_.IdleEnergy(idle_dt, point);
        result_.idle_energy += joules;
        auto& res = result_.residency[machine_.IndexOf(point)];
        res.idle_ms += idle_dt;
        res.idle_energy += joules;
        if (options_.record_trace) {
          result_.trace.AddSegment({halt_end, t_next, CpuState::kIdle, -1, point});
        }
      }
    }
    now_ = t_next;
    if (now_ >= options_.horizon_ms - kTimeEpsMs) {
      break;
    }

    // --- Apply state changes due at now_: arrivals, completions, misses,
    // releases. ---
    if (aperiodic_.has_value()) {
      aperiodic_->AdmitArrivals(now_);
    }
    std::vector<int> completed;
    for (auto& job : jobs_) {
      if (job.finished) {
        continue;
      }
      if (IsServerJob(job)) {
        if (MaybeCompleteServerJob(&job, now_)) {
          completed.push_back(job.task_id);
        }
      } else if (job.RemainingActualWork() <= kWorkEps) {
        FinalizeJobCompletion(&job, now_);
        completed.push_back(job.task_id);
      }
    }
    std::vector<int> released;
    // CBS management: wake on arrivals, postpone on budget exhaustion.
    // Either action manifests as completion/release pairs so DVS policies
    // observe the server exactly like any periodic task.
    if (options_.aperiodic.kind == ServerKind::kCbs) {
      Job* active_server = nullptr;
      for (auto& job : jobs_) {
        if (IsServerJob(job) && !job.finished) {
          active_server = &job;
          break;
        }
      }
      if (active_server != nullptr &&
          (aperiodic_->budget_remaining() <= kWorkEps ||
           active_server->deadline_ms <= now_ + kTimeEpsMs)) {
        FinalizeJobCompletion(active_server, now_);
        completed.push_back(active_server->task_id);
        double new_deadline = aperiodic_->CbsPostpone();
        Job replacement;
        replacement.task_id = server_task_id_;
        replacement.invocation =
            task_states_[static_cast<size_t>(server_task_id_)].next_invocation++;
        replacement.release_ms = now_;
        replacement.deadline_ms = new_deadline;
        replacement.wcet_work = options_.aperiodic.budget_ms;
        replacement.actual_work = options_.aperiodic.budget_ms;
        jobs_.push_back(replacement);
        ++result_.releases;
        ++result_.task_stats[static_cast<size_t>(server_task_id_)].releases;
        released.push_back(server_task_id_);
      } else if (active_server == nullptr && !aperiodic_->QueueEmpty()) {
        double deadline = aperiodic_->CbsWake(now_);
        Job job;
        job.task_id = server_task_id_;
        job.invocation =
            task_states_[static_cast<size_t>(server_task_id_)].next_invocation++;
        job.release_ms = now_;
        job.deadline_ms = deadline;
        job.wcet_work = options_.aperiodic.budget_ms;
        job.actual_work = options_.aperiodic.budget_ms;
        jobs_.push_back(job);
        ++result_.releases;
        ++result_.task_stats[static_cast<size_t>(server_task_id_)].releases;
        released.push_back(server_task_id_);
      }
    }
    for (auto& job : jobs_) {
      if (job.finished || job.deadline_ms > now_ + kTimeEpsMs) {
        continue;
      }
      if (IsServerJob(job)) {
        // A server has no deadline obligation of its own: at the end of its
        // period the old budget expires and the job simply retires.
        FinalizeJobCompletion(&job, now_);
        completed.push_back(job.task_id);
        continue;
      }
      if (!job.missed) {
        job.missed = true;
        ++result_.deadline_misses;
        ++result_.task_stats[static_cast<size_t>(job.task_id)].deadline_misses;
        if (options_.record_trace) {
          result_.trace.AddEvent({now_, TraceEventKind::kDeadlineMiss, job.task_id, {}});
        }
        if (options_.miss_policy == MissPolicy::kAbortJob) {
          job.finished = true;
          job.completion_ms = now_;
          // Aborted jobs do not count as completions and record no response.
          ++result_.aborted;
          ++result_.task_stats[static_cast<size_t>(job.task_id)].aborted;
        }
      }
    }
    ReleaseDueJobs(now_, &released);

    // A freshly released polling-server job with an empty queue retires on
    // the spot (its completion callback must follow its release callback).
    std::vector<int> completed_after_release;
    if (aperiodic_.has_value()) {
      for (auto& job : jobs_) {
        if (IsServerJob(job) && !job.finished && MaybeCompleteServerJob(&job, now_)) {
          completed_after_release.push_back(job.task_id);
        }
      }
    }

    // Drop finished jobs (after stats were recorded above).
    jobs_.erase(std::remove_if(jobs_.begin(), jobs_.end(),
                               [](const Job& job) { return job.finished; }),
                jobs_.end());

    // --- Policy callbacks: completions first, then releases. ---
    BuildContext(now_);
    for (int task_id : completed) {
      policy_->OnTaskCompletion(task_id, ctx_, *speed_);
    }
    for (int task_id : released) {
      policy_->OnTaskRelease(task_id, ctx_, *speed_);
    }
    for (int task_id : completed_after_release) {
      policy_->OnTaskCompletion(task_id, ctx_, *speed_);
    }

    // Timer wakeup (non-RT interval baseline).
    if (wakeup.has_value() && *wakeup <= now_ + kTimeEpsMs) {
      policy_->OnWakeup(ctx_, *speed_);
    }
    wakeup = policy_->NextWakeupMs(ctx_);

    // Idle notification: fires once per idle period.
    bool any_unfinished = false;
    for (const auto& job : jobs_) {
      if (!job.finished) {
        any_unfinished = true;
        break;
      }
    }
    if (!any_unfinished && !was_idle) {
      policy_->OnIdle(ctx_, *speed_);
      if (options_.record_trace) {
        result_.trace.AddEvent({now_, TraceEventKind::kIdleStart, -1, {}});
      }
    }
    was_idle = !any_unfinished;
  }

  result_.lower_bound_energy = MinimumExecutionEnergy(
      result_.total_work_executed, options_.horizon_ms, machine_,
      EnergyModel(0.0, options_.energy_coefficient));
  result_.server_task_id = server_task_id_;
  for (const auto& job : jobs_) {
    if (!job.finished) {
      ++result_.unfinished_at_horizon;
      ++result_.task_stats[static_cast<size_t>(job.task_id)].unfinished;
    }
  }
  if (aperiodic_.has_value()) {
    aperiodic_->FinalizeStats();
    result_.aperiodic = aperiodic_->stats();
  }
  result_.policy_counters = policy_->counters().DiffSince(counters_at_start);
  if (options_.audit) {
    AuditInputs inputs;
    inputs.tasks = &tasks_;
    inputs.machine = &machine_;
    inputs.options = &options_;
    inputs.policy_guarantees_deadlines = policy_->guarantees_deadlines();
    result_.audit = AuditSimResult(result_, inputs);
  }
  return result_;
}

SimResult RunSimulation(const TaskSet& tasks, const MachineSpec& machine,
                        DvsPolicy& policy, ExecTimeModel& exec_model,
                        const SimOptions& options) {
  Simulator sim(tasks, machine, &policy, &exec_model, options);
  return sim.Run();
}

SimResult RunSimulation(const TaskSet& tasks, const MachineSpec& machine,
                        const std::string& policy_id, ExecTimeModel& exec_model,
                        const SimOptions& options) {
  std::unique_ptr<DvsPolicy> policy = MakePolicy(policy_id);
  return RunSimulation(tasks, machine, *policy, exec_model, options);
}

std::string SimResult::Summary() const {
  return StrFormat(
      "%s: energy=%.4g (exec=%.4g idle=%.4g, bound=%.4g) misses=%lld "
      "releases=%lld switches=%lld busy=%.1fms idle=%.1fms",
      policy_name.c_str(), total_energy(), exec_energy, idle_energy,
      lower_bound_energy, static_cast<long long>(deadline_misses),
      static_cast<long long>(releases), static_cast<long long>(speed_switches),
      busy_ms, idle_ms);
}

}  // namespace rtdvs
