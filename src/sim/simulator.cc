#include "src/sim/simulator.h"

#include <algorithm>
#include <limits>

#include "src/cpu/lower_bound.h"
#include "src/util/check.h"
#include "src/util/json.h"
#include "src/util/profiler.h"
#include "src/util/strings.h"
#include "src/util/time_eps.h"

namespace rtdvs {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

Simulator::Simulator(TaskSet tasks, MachineSpec machine, DvsPolicy* policy,
                     ExecTimeModel* exec_model, SimOptions options)
    : tasks_(std::move(tasks)),
      machine_(std::move(machine)),
      policy_(policy),
      exec_model_(exec_model),
      options_(options),
      scheduler_(MakeScheduler(policy->scheduler_kind())),
      energy_(options.idle_level, options.energy_coefficient),
      rng_(options.seed),
      accountant_(energy_),
      trace_sink_(&result_.trace) {
  RTDVS_CHECK(policy_ != nullptr);
  RTDVS_CHECK(exec_model_ != nullptr);
  RTDVS_CHECK_GT(options_.horizon_ms, 0.0);
  RTDVS_CHECK(!tasks_.empty()) << "cannot simulate an empty task set";
  RTDVS_CHECK_GE(options_.switch_time_ms, 0.0);
  if (options_.aperiodic.kind != ServerKind::kNone) {
    // The server is an ordinary periodic task as far as schedulers,
    // schedulability tests and DVS policies are concerned.
    server_task_id_ = tasks_.AddTask({"server", options_.aperiodic.period_ms,
                                      options_.aperiodic.budget_ms, 0.0});
    aperiodic_.emplace(options_.aperiodic, options_.seed ^ 0xa9e210d1cULL);
  }
}

Simulator::~Simulator() = default;

double Simulator::NextQueuedEventTime() {
  while (!events_.Empty()) {
    const EngineEvent& top = events_.Top();
    switch (top.type) {
      case EngineEventType::kDeadline:
        // Stale when the job already finished (lazy invalidation) or the
        // deadline was already handled by the value-based miss scan (events
        // within kTimeEpsMs of now are "due now", not scheduling points).
        if (!deadline_live_[top.payload - 1] ||
            top.time_ms <= now_ + kTimeEpsMs) {
          events_.Pop();
          continue;
        }
        return top.time_ms;
      case EngineEventType::kPolicyTimer:
        // Stale when superseded by a newer NextWakeupMs value, or already
        // due (OnWakeup fires from the value check in the event loop; a due
        // timer never becomes a scheduling point of its own).
        if (top.payload != timer_generation_ || top.time_ms <= now_ + kTimeEpsMs) {
          events_.Pop();
          continue;
        }
        return top.time_ms;
      default:
        // Releases are the boot events (t = phase, possibly == now) and
        // always valid; the horizon never staleness-checks.
        return top.time_ms;
    }
  }
  return kInf;
}

void Simulator::ConsumeDueEvents() {
  due_releases_.clear();
  while (!events_.Empty() && events_.Top().time_ms <= now_ + kTimeEpsMs) {
    const EngineEvent event = events_.Pop();
    if (event.type == EngineEventType::kRelease) {
      due_releases_.push_back(event.task_id);
    }
  }
  // Task-id order keeps exec-model RNG draws and policy release callbacks
  // in the order the monolithic per-task scan produced.
  std::sort(due_releases_.begin(), due_releases_.end());
  due_releases_.erase(std::unique(due_releases_.begin(), due_releases_.end()),
                      due_releases_.end());
}

void Simulator::SyncPolicyTimer(const std::optional<double>& wakeup) {
  if (wakeup == queued_wakeup_) {
    return;
  }
  queued_wakeup_ = wakeup;
  if (use_events_) {
    ++timer_generation_;
    if (wakeup.has_value() && *wakeup < kInf) {
      events_.Push(*wakeup, EngineEventType::kPolicyTimer, -1, timer_generation_);
    }
  }
  // Queue-free mode reads queued_wakeup_ directly when deriving the next
  // scheduling point; there is no event to (in)validate.
}

void Simulator::QueueJobDeadline(Job* job) {
  job->uid = next_job_uid_++;
  // A periodic job's deadline coincides exactly with its task's next release
  // (both are release + period), and ReleaseDueJobs queues that release
  // event unconditionally — so a separate deadline event would be a
  // duplicate scheduling point. Only server jobs need one: CBS wake and
  // postpone set deadlines that track no release. The queue-free loop has
  // no server, hence no deadline events and no liveness vector to grow.
  if (use_events_) {
    deadline_live_.push_back(1);
    if (IsServerJob(*job)) {
      events_.Push(job->deadline_ms, EngineEventType::kDeadline, job->task_id,
                   job->uid);
    }
  }
}

double Simulator::EffectiveRemaining(const Job& job) const {
  if (IsServerJob(job)) {
    return aperiodic_->ServableWork();
  }
  return job.RemainingActualWork();
}

void Simulator::FinalizeJobCompletion(Job* job, double now) {
  job->finished = true;
  job->completion_ms = now;
  --unfinished_count_;
  if (use_events_) {
    deadline_live_[job->uid - 1] = 0;
  }
  if (IsServerJob(*job)) {
    // What the server actually consumed is what DVS bookkeeping (cc_i in
    // ccEDF) may reclaim until the next replenishment.
    job->actual_work = job->executed_work;
  }
  auto& stats = result_.task_stats[static_cast<size_t>(job->task_id)];
  ++stats.completions;
  ++result_.completions;
  double response = now - job->release_ms;
  stats.total_response_ms += response;
  stats.max_response_ms = std::max(stats.max_response_ms, response);
  task_states_[static_cast<size_t>(job->task_id)].last_actual_work = job->actual_work;
  if (options_.record_trace) {
    result_.trace.AddEvent({now, TraceEventKind::kCompletion, job->task_id, {}});
  }
}

bool Simulator::MaybeCompleteServerJob(Job* job, double now) {
  if (job->finished) {
    return false;
  }
  switch (options_.aperiodic.kind) {
    case ServerKind::kPolling:
      // The polling server forfeits its remaining budget the moment it has
      // nothing to serve.
      if (aperiodic_->QueueEmpty() || aperiodic_->budget_remaining() <= kWorkEps) {
        aperiodic_->ForfeitBudget();
        FinalizeJobCompletion(job, now);
        return true;
      }
      break;
    case ServerKind::kDeferrable:
      // The deferrable server keeps unused budget until its deadline.
      if (aperiodic_->budget_remaining() <= kWorkEps) {
        FinalizeJobCompletion(job, now);
        return true;
      }
      break;
    case ServerKind::kCbs:
      // The CBS activation ends when the queue drains; budget exhaustion
      // postpones the deadline instead (handled in the event loop).
      if (aperiodic_->QueueEmpty()) {
        FinalizeJobCompletion(job, now);
        return true;
      }
      break;
    case ServerKind::kNone:
      break;
  }
  return false;
}

void Simulator::ReleaseDueJobs(double now, std::vector<int>* released) {
  for (int id : due_releases_) {
    auto& state = task_states_[static_cast<size_t>(id)];
    const Task& task = tasks_.task(id);
    while (state.next_release_ms <= now + kTimeEpsMs) {
      double fraction = 1.0;
      if (id != server_task_id_) {
        // Constant models skip the virtual draw: DrawFraction would return
        // exactly this value and consume no randomness.
        fraction = const_fraction_.has_value()
                       ? *const_fraction_
                       : exec_model_->DrawFraction(id, state.next_invocation, rng_);
      } else {
        aperiodic_->Replenish();
      }
      RTDVS_CHECK_GT(fraction, 0.0);
      if (fraction > 1.0 + kWorkEps) {
        // Overrun-permitting models (ColdStartModel) void the guarantee;
        // the audit's RT oracle keys off this counter.
        ++result_.wcet_overruns;
      }
      Job job;
      job.task_id = id;
      job.invocation = state.next_invocation;
      job.release_ms = state.next_release_ms;
      job.deadline_ms = state.next_release_ms + task.period_ms;
      job.wcet_work = task.wcet_ms;
      job.actual_work = fraction * task.wcet_ms;
      QueueJobDeadline(&job);
      jobs_.push_back(job);
      ++unfinished_count_;
      ++state.next_invocation;
      state.next_release_ms += task.period_ms;
      ++result_.releases;
      ++result_.task_stats[static_cast<size_t>(id)].releases;
      if (options_.record_trace) {
        result_.trace.AddEvent({job.release_ms, TraceEventKind::kRelease, id, {}});
      }
      released->push_back(id);
    }
    if (use_events_ && state.next_release_ms < kInf) {
      events_.Push(state.next_release_ms, EngineEventType::kRelease, id);
    }
  }
}

double Simulator::NextPeriodicReleaseMs() const {
  double next = kInf;
  for (const TaskState& state : task_states_) {
    next = std::min(next, state.next_release_ms);
  }
  return next;
}

void Simulator::CollectDueReleases() {
  due_releases_.clear();
  const size_t n = task_states_.size();
  for (size_t id = 0; id < n; ++id) {
    if (task_states_[id].next_release_ms <= now_ + kTimeEpsMs) {
      due_releases_.push_back(static_cast<int>(id));
    }
  }
}

void Simulator::ArmHyperperiod() {
  if (!options_.fast_paths.hyperperiod) {
    return;  // gate string stays "" by the FastPathStats contract
  }
  const char* reason = nullptr;
  if (use_events_) {
    reason = "aperiodic server";
  } else if (timer_driven_) {
    reason = "timer-driven policy";
  } else if (options_.record_trace) {
    reason = "trace recording";
  } else if (!policy_->supports_time_skip()) {
    reason = "policy does not support time skip";
  } else if (!exec_model_->stationary()) {
    reason = "non-stationary exec model";
  } else if (!const_fraction_.has_value()) {
    reason = "execution fractions not a single constant";
  } else if (options_.horizon_ms > HyperperiodMemo::kMaxExactMagnitudeMs) {
    reason = "horizon beyond the exact-arithmetic magnitude bound";
  } else if (!HyperperiodMemo::OnDyadicGrid(options_.switch_time_ms)) {
    reason = "switch time off the dyadic grid";
  }
  if (reason == nullptr) {
    // The exact-arithmetic gate: window repetition is a floating-point
    // property, not a scheduling one — absolute-time sums round differently
    // across binades, so replay arms only when every time/work operation in
    // the run is exact: dyadic task parameters (release/deadline/boundary
    // sums stay exact) and power-of-two frequencies (completion and work
    // scaling only shift exponents). Anything else would risk a verified
    // repetition breaking down in a later window. See DESIGN.md.
    for (const auto& point : machine_.points()) {
      if (!HyperperiodMemo::IsExactFrequency(point.frequency)) {
        reason = "machine frequencies not powers of two";
        break;
      }
    }
  }
  if (reason == nullptr) {
    for (int id = 0; id < tasks_.size(); ++id) {
      const Task& task = tasks_.task(id);
      if (task.phase_ms != 0.0) {
        // Hyperperiod boundaries are all-task release points (the policy
        // state rebuild the replay relies on) only when every phase is zero.
        reason = "nonzero task phase";
        break;
      }
      if (!HyperperiodMemo::OnDyadicGrid(task.period_ms) ||
          !HyperperiodMemo::OnDyadicGrid(task.wcet_ms) ||
          !HyperperiodMemo::OnDyadicGrid(*const_fraction_ * task.wcet_ms)) {
        reason = "task parameters off the dyadic grid";
        break;
      }
    }
  }
  std::optional<double> h;
  if (reason == nullptr) {
    // An LCM beyond horizon/4 cannot fit warmup + two recorded windows +
    // one replayed window, so it doubles as the overflow bound.
    const double max_units =
        options_.horizon_ms * (HyperperiodMemo::kDyadicGridPerMs / 4.0);
    h = HyperperiodMemo::HyperperiodMs(tasks_,
                                       static_cast<int64_t>(max_units));
    if (!h.has_value()) {
      reason = "hyperperiod too long";
    } else if (4.0 * *h >= options_.horizon_ms - kTimeEpsMs) {
      reason = "horizon shorter than four hyperperiods";
    }
  }
  if (reason != nullptr) {
    result_.fastpath.hyperperiod_gate = reason;
    return;
  }
  hp_.Arm(*h, options_.horizon_ms, &result_.fastpath);
}

void Simulator::BuildContext(double now) {
  context_builder_.Build(
      now, jobs_, accountant_.totals(),
      [this](int id) {
        const TaskState& state = task_states_[static_cast<size_t>(id)];
        return ContextBuilder::TaskSnapshot{state.next_release_ms,
                                            state.cumulative_executed,
                                            state.last_actual_work};
      },
      &ctx_);
}

SimResult Simulator::Run() {
  RTDVS_CHECK(!ran_) << "Simulator::Run may be called once";
  ran_ = true;
  if (options_.profile) {
    Profiler::Enable();
  }
  // Counters accumulate over the policy's lifetime and the policy object may
  // be reused across runs; report the per-run delta.
  const PolicyCounters counters_at_start = policy_->counters();

  const size_t n = static_cast<size_t>(tasks_.size());
  task_states_.assign(n, TaskState{});
  result_.task_stats.assign(n, TaskStats{});
  for (size_t id = 0; id < n; ++id) {
    task_states_[id].next_release_ms = tasks_.task(static_cast<int>(id)).phase_ms;
    task_states_[id].last_actual_work = tasks_.task(static_cast<int>(id)).wcet_ms;
  }
  if (options_.aperiodic.kind == ServerKind::kCbs) {
    // A CBS has no periodic releases; its activations are created by the
    // wake/postpone rules in the event loop.
    task_states_[static_cast<size_t>(server_task_id_)].next_release_ms = kInf;
  }
  result_.policy_name = policy_->name();
  result_.scheduler = policy_->scheduler_kind();
  result_.horizon_ms = options_.horizon_ms;
  result_.residency.clear();
  for (const auto& point : machine_.points()) {
    result_.residency.push_back(PointResidency{point, 0, 0, 0, 0});
  }
  result_.trace.set_capacity_limit(options_.max_trace_segments);

  // Wire the engine components for this run.
  TraceSink* sink = options_.record_trace ? &trace_sink_ : nullptr;
  accountant_.Reset();
  accountant_.BindResidency(&machine_, &result_.residency);
  accountant_.set_trace_sink(sink);
  context_builder_.Bind(&tasks_, &machine_);
  ready_.BindScheduler(scheduler_.get());
  ready_.ResetTracking();
  now_ = 0;
  speed_ = std::make_unique<ModeledSpeedController>(
      &machine_, options_.switch_time_ms, &now_, sink);
  events_.Clear();
  deadline_live_.clear();
  next_job_uid_ = 1;
  use_events_ = server_task_id_ >= 0;
  timer_driven_ = policy_->timer_driven();
  unfinished_count_ = 0;
  const size_t jobs_reserve = std::max<size_t>(16, 2 * n);
  if (options_.job_pool != nullptr) {
    jobs_ = options_.job_pool->Acquire(jobs_reserve);
  } else {
    jobs_.clear();
    jobs_.reserve(jobs_reserve);
  }
  periods_.resize(n);
  for (size_t id = 0; id < n; ++id) {
    periods_[id] = tasks_.task(static_cast<int>(id)).period_ms;
  }
  const_fraction_ = exec_model_->constant_fraction();
  if (options_.record_trace) {
    result_.trace.Reserve(
        std::min<size_t>(options_.max_trace_segments, 1024), 1024);
  }
  if (use_events_) {
    events_.Push(options_.horizon_ms, EngineEventType::kHorizon);
    for (size_t id = 0; id < n; ++id) {
      if (task_states_[id].next_release_ms < kInf) {
        events_.Push(task_states_[id].next_release_ms, EngineEventType::kRelease,
                     static_cast<int>(id));
      }
    }
  }

  ArmHyperperiod();
  BuildContext(now_);
  policy_->OnStart(ctx_, *speed_);
  queued_wakeup_.reset();
  if (timer_driven_) {
    SyncPolicyTimer(policy_->NextWakeupMs(ctx_));
  }

  if (use_events_) {
    if (scheduler_->kind() == SchedulerKind::kEdf) {
      RunLoop<true, SchedulerKind::kEdf>();
    } else {
      RunLoop<true, SchedulerKind::kRm>();
    }
  } else {
    if (scheduler_->kind() == SchedulerKind::kEdf) {
      RunLoop<false, SchedulerKind::kEdf>();
    } else {
      RunLoop<false, SchedulerKind::kRm>();
    }
  }

  const EngineTotals& totals = accountant_.totals();
  result_.busy_ms = totals.busy_ms;
  result_.idle_ms = totals.idle_ms;
  result_.switching_ms = totals.switching_ms;
  result_.total_work_executed = totals.work;
  result_.exec_energy = totals.exec_energy;
  result_.idle_energy = totals.idle_energy;
  result_.speed_switches = speed_->switch_count();
  result_.lower_bound_energy = MinimumExecutionEnergy(
      result_.total_work_executed, options_.horizon_ms, machine_,
      EnergyModel(0.0, options_.energy_coefficient));
  result_.server_task_id = server_task_id_;
  for (const auto& job : jobs_) {
    if (!job.finished) {
      ++result_.unfinished_at_horizon;
      ++result_.task_stats[static_cast<size_t>(job.task_id)].unfinished;
    }
  }
  if (aperiodic_.has_value()) {
    aperiodic_->FinalizeStats();
    result_.aperiodic = aperiodic_->stats();
  }
  result_.policy_counters = policy_->counters().DiffSince(counters_at_start);
  if (options_.audit) {
    AuditInputs inputs;
    inputs.tasks = &tasks_;
    inputs.machine = &machine_;
    inputs.options = &options_;
    inputs.policy_guarantees_deadlines = policy_->guarantees_deadlines();
    result_.audit = AuditSimResult(result_, inputs);
  }
  if (options_.job_pool != nullptr) {
    options_.job_pool->Release(std::move(jobs_));
    jobs_ = std::vector<Job>();
  }
  // Bank this run's spans while still on the thread that recorded them
  // (sweep worker threads are retired with the pool).
  Profiler::FlushThisThread();
  return result_;
}

template <bool kServer, SchedulerKind kKind>
void Simulator::RunLoop() {
  const double horizon = options_.horizon_ms;
  const bool fast_idle = !kServer && options_.fast_paths.idle_skip;
  bool was_idle = false;

  while (now_ < horizon - kTimeEpsMs) {
    RTDVS_PROF_SCOPE("sim/step");
    ++result_.fastpath.steps;
    size_t running = Scheduler::kNone;
    // The picked job's task id (-1 when idle), captured before job
    // compaction invalidates `running`; the hyperperiod memo records and
    // verifies it.
    [[maybe_unused]] int hp_pick = -1;
    double t_next = horizon;
    double next_release = kInf;
    bool idle_fast = false;

    if constexpr (!kServer) {
      next_release = NextPeriodicReleaseMs();
      idle_fast = fast_idle && jobs_.empty();
    }
    if (idle_fast) {
      // --- Idle skip: no runnable job, so the next scheduling point is the
      // next release (or a pending timer wakeup) and the whole interval
      // integrates as one idle segment. Skipping the scheduler pick leaves
      // preemption tracking untouched, exactly like a pick over an empty
      // job vector.
      RTDVS_PROF_SCOPE("sim/fastpath/idle_skip");
      t_next = std::min(t_next, next_release);
      if (timer_driven_ && queued_wakeup_.has_value() &&
          *queued_wakeup_ > now_ + kTimeEpsMs) {
        t_next = std::min(t_next, *queued_wakeup_);
      }
      ++result_.fastpath.idle_skips;
    } else {
      if constexpr (kServer) {
        // A server job holding budget with an empty queue is not runnable.
        for (auto& job : jobs_) {
          if (IsServerJob(job) && !job.finished) {
            job.suspended = EffectiveRemaining(job) <= kWorkEps;
          }
        }
      }
      if constexpr (kKind == SchedulerKind::kEdf) {
        running = ready_.PickTrackedWith(jobs_, EdfComparator{},
                                         &result_.preemptions);
      } else {
        running = ready_.PickTrackedWith(jobs_, RmComparator{periods_.data()},
                                         &result_.preemptions);
      }
      if constexpr (!kServer) {
        if (hp_.active() && running != Scheduler::kNone) {
          hp_pick = jobs_[running].task_id;
        }
      }

      // --- Find the next event. ---
      if constexpr (kServer) {
        t_next = std::min(t_next, NextQueuedEventTime());
        if (aperiodic_->NextArrivalMs() > now_ + kTimeEpsMs) {
          t_next = std::min(t_next, aperiodic_->NextArrivalMs());
        }
      } else {
        t_next = std::min(t_next, next_release);
        if (timer_driven_ && queued_wakeup_.has_value() &&
            *queued_wakeup_ > now_ + kTimeEpsMs) {
          t_next = std::min(t_next, *queued_wakeup_);
        }
      }
    }
    double exec_start = now_;
    if (running != Scheduler::kNone) {
      // Completion and switch-halt-end depend on the current speed, so they
      // are derived analytically each step rather than queued.
      exec_start = std::max(now_, speed_->blocked_until_ms());
      double frequency = speed_->current().frequency;
      double completion =
          exec_start + EffectiveRemaining(jobs_[running]) / frequency;
      t_next = std::min(t_next, completion);
    }
    RTDVS_CHECK_GT(t_next, now_ - kTimeEpsMs)
        << "event horizon moved backwards at t=" << now_;
    t_next = std::max(t_next, now_);
    t_next = std::min(t_next, horizon);

    // --- Integrate the segment [now_, t_next). ---
    const OperatingPoint point = speed_->current();
    if (running != Scheduler::kNone) {
      exec_start = std::min(std::max(exec_start, now_), t_next);
      if (exec_start > now_) {
        // Halted during a transition: time passes, (almost) no energy (§3.1).
        accountant_.RecordSwitchHalt(now_, exec_start, point);
      }
      double exec_dt = t_next - exec_start;
      if (exec_dt > 0) {
        Job& job = jobs_[running];
        double work = exec_dt * point.frequency;
        // Rounding guard: never execute more than the job has left.
        work = std::min(work, EffectiveRemaining(job));
        if constexpr (kServer) {
          if (IsServerJob(job)) {
            aperiodic_->Execute(work, t_next, point.frequency);
          }
        }
        job.executed_work += work;
        task_states_[static_cast<size_t>(job.task_id)].cumulative_executed += work;
        result_.task_stats[static_cast<size_t>(job.task_id)].executed_work += work;
        accountant_.RecordExecution(exec_start, t_next, work, job.task_id, point);
      }
    } else {
      // The mandatory halt applies on the idle path too: an OnIdle (or
      // completion-time) speed change with switch_time_ms > 0 halts the
      // processor just as it does before execution resumes. Charge the halt
      // window to switching_ms — not idle energy at the new point.
      double halt_end = std::clamp(speed_->blocked_until_ms(), now_, t_next);
      if (halt_end > now_) {
        accountant_.RecordSwitchHalt(now_, halt_end, point);
      }
      accountant_.RecordIdle(halt_end, t_next, point);
      if (idle_fast) {
        result_.fastpath.idle_skipped_ms += t_next - now_;
      }
    }
    now_ = t_next;
    if (now_ >= horizon - kTimeEpsMs) {
      break;
    }

    // --- Apply state changes due at now_: arrivals, completions, misses,
    // releases. ---
    if constexpr (kServer) {
      ConsumeDueEvents();
      aperiodic_->AdmitArrivals(now_);
    } else {
      if (next_release <= now_ + kTimeEpsMs) {
        CollectDueReleases();
      } else {
        due_releases_.clear();
      }
    }
    completed_.clear();
    released_.clear();
    completed_after_release_.clear();
    bool any_aborted = false;
    if (!jobs_.empty()) {
      for (auto& job : jobs_) {
        if (job.finished) {
          continue;
        }
        if (kServer && IsServerJob(job)) {
          if (MaybeCompleteServerJob(&job, now_)) {
            completed_.push_back(job.task_id);
          }
        } else if (job.RemainingActualWork() <= kWorkEps) {
          FinalizeJobCompletion(&job, now_);
          completed_.push_back(job.task_id);
        }
      }
    }
    // CBS management: wake on arrivals, postpone on budget exhaustion.
    // Either action manifests as completion/release pairs so DVS policies
    // observe the server exactly like any periodic task.
    if constexpr (kServer) {
      if (options_.aperiodic.kind == ServerKind::kCbs) {
        Job* active_server = nullptr;
        for (auto& job : jobs_) {
          if (IsServerJob(job) && !job.finished) {
            active_server = &job;
            break;
          }
        }
        if (active_server != nullptr &&
            (aperiodic_->budget_remaining() <= kWorkEps ||
             active_server->deadline_ms <= now_ + kTimeEpsMs)) {
          FinalizeJobCompletion(active_server, now_);
          completed_.push_back(active_server->task_id);
          double new_deadline = aperiodic_->CbsPostpone();
          Job replacement;
          replacement.task_id = server_task_id_;
          replacement.invocation =
              task_states_[static_cast<size_t>(server_task_id_)].next_invocation++;
          replacement.release_ms = now_;
          replacement.deadline_ms = new_deadline;
          replacement.wcet_work = options_.aperiodic.budget_ms;
          replacement.actual_work = options_.aperiodic.budget_ms;
          QueueJobDeadline(&replacement);
          jobs_.push_back(replacement);
          ++unfinished_count_;
          ++result_.releases;
          ++result_.task_stats[static_cast<size_t>(server_task_id_)].releases;
          released_.push_back(server_task_id_);
        } else if (active_server == nullptr && !aperiodic_->QueueEmpty()) {
          double deadline = aperiodic_->CbsWake(now_);
          Job job;
          job.task_id = server_task_id_;
          job.invocation =
              task_states_[static_cast<size_t>(server_task_id_)].next_invocation++;
          job.release_ms = now_;
          job.deadline_ms = deadline;
          job.wcet_work = options_.aperiodic.budget_ms;
          job.actual_work = options_.aperiodic.budget_ms;
          QueueJobDeadline(&job);
          jobs_.push_back(job);
          ++unfinished_count_;
          ++result_.releases;
          ++result_.task_stats[static_cast<size_t>(server_task_id_)].releases;
          released_.push_back(server_task_id_);
        }
      }
    }
    if (!jobs_.empty()) {
      for (auto& job : jobs_) {
        if (job.finished || job.deadline_ms > now_ + kTimeEpsMs) {
          continue;
        }
        if (kServer && IsServerJob(job)) {
          // A server has no deadline obligation of its own: at the end of its
          // period the old budget expires and the job simply retires.
          FinalizeJobCompletion(&job, now_);
          completed_.push_back(job.task_id);
          continue;
        }
        if (!job.missed) {
          job.missed = true;
          ++result_.deadline_misses;
          ++result_.task_stats[static_cast<size_t>(job.task_id)].deadline_misses;
          if (options_.record_trace) {
            result_.trace.AddEvent({now_, TraceEventKind::kDeadlineMiss, job.task_id, {}});
          }
          if (options_.miss_policy == MissPolicy::kAbortJob) {
            job.finished = true;
            job.completion_ms = now_;
            --unfinished_count_;
            any_aborted = true;
            if (use_events_) {
              deadline_live_[job.uid - 1] = 0;
            }
            // Aborted jobs do not count as completions and record no response.
            ++result_.aborted;
            ++result_.task_stats[static_cast<size_t>(job.task_id)].aborted;
          }
        }
      }
    }
    ReleaseDueJobs(now_, &released_);

    if constexpr (kServer) {
      // A freshly released polling-server job with an empty queue retires on
      // the spot (its completion callback must follow its release callback).
      for (auto& job : jobs_) {
        if (IsServerJob(job) && !job.finished && MaybeCompleteServerJob(&job, now_)) {
          completed_after_release_.push_back(job.task_id);
        }
      }
    }

    // Drop finished jobs (after stats were recorded above). Only steps that
    // finished something need the compaction pass.
    if (!completed_.empty() || !completed_after_release_.empty() || any_aborted) {
      jobs_.erase(std::remove_if(jobs_.begin(), jobs_.end(),
                                 [](const Job& job) { return job.finished; }),
                  jobs_.end());
    }

    // --- Policy callbacks: completions first, then releases. ---
    // Steps where nothing the policy observes happened (no completion, no
    // release, no wakeup, no idle transition) skip the context build and
    // the callback block entirely; timer-driven policies always get their
    // per-step NextWakeupMs poll.
    const bool entered_idle = unfinished_count_ == 0 && !was_idle;
    bool replayed = false;
    if constexpr (!kServer) {
      // Replay mode substitutes the recorded callback effects for the whole
      // block below: no context build, no policy execution. Everything else
      // this iteration did (pick, integration, releases, completions,
      // misses) ran the real code above.
      if (hp_.replaying()) {
        RTDVS_PROF_SCOPE("sim/fastpath/hyperperiod");
        hp_.ReplayStep(now_, hp_pick, policy_, speed_.get(), machine_);
        replayed = true;
      }
    }
    if (!replayed &&
        (timer_driven_ || entered_idle || !completed_.empty() ||
         !released_.empty() || !completed_after_release_.empty())) {
      RTDVS_PROF_SCOPE("sim/policy/callbacks");
      BuildContext(now_);
      for (int task_id : completed_) {
        policy_->OnTaskCompletion(task_id, ctx_, *speed_);
      }
      for (int task_id : released_) {
        policy_->OnTaskRelease(task_id, ctx_, *speed_);
      }
      for (int task_id : completed_after_release_) {
        policy_->OnTaskCompletion(task_id, ctx_, *speed_);
      }

      // Timer wakeup (non-RT interval baseline).
      if (timer_driven_) {
        if (queued_wakeup_.has_value() && *queued_wakeup_ <= now_ + kTimeEpsMs) {
          policy_->OnWakeup(ctx_, *speed_);
        }
        SyncPolicyTimer(policy_->NextWakeupMs(ctx_));
      }

      // Idle notification: fires once per idle period.
      if (entered_idle) {
        policy_->OnIdle(ctx_, *speed_);
        if (options_.record_trace) {
          result_.trace.AddEvent({now_, TraceEventKind::kIdleStart, -1, {}});
        }
      }
    }
    was_idle = unfinished_count_ == 0;
    if constexpr (!kServer) {
      if (hp_.active() &&
          hp_.OnStepEnd(now_, hp_pick, policy_, speed_.get()) ==
              HyperperiodMemo::StepAction::kResyncPolicy) {
        // Replay just retired its last whole window: the policy's absolute
        // snapshots are still frozen at the verification boundary, so
        // rebuild the context here and let it catch up before the final
        // (horizon-clamped) partial window runs on the stepped path.
        RTDVS_PROF_SCOPE("sim/fastpath/hyperperiod");
        BuildContext(now_);
        policy_->OnTimeSkip(ctx_);
      }
    }
  }
}

template void Simulator::RunLoop<false, SchedulerKind::kEdf>();
template void Simulator::RunLoop<false, SchedulerKind::kRm>();
template void Simulator::RunLoop<true, SchedulerKind::kEdf>();
template void Simulator::RunLoop<true, SchedulerKind::kRm>();

// The RunSimulation convenience wrappers are defined in mp_simulator.cc:
// they route through the M=1 cluster path so the legacy API and the
// SimRequest API share one entry point (and one audit story).

JsonValue FastPathStatsToJson(const FastPathStats& stats) {
  JsonValue doc = JsonValue::Object();
  doc.Set("steps", stats.steps);
  doc.Set("idle_skips", stats.idle_skips);
  doc.Set("idle_skipped_ms", stats.idle_skipped_ms);
  doc.Set("hyperperiod_cycles_verified", stats.hyperperiod_cycles_verified);
  doc.Set("hyperperiod_cycles_replayed", stats.hyperperiod_cycles_replayed);
  doc.Set("steps_replayed", stats.steps_replayed);
  if (!stats.hyperperiod_gate.empty()) {
    doc.Set("hyperperiod_gate", stats.hyperperiod_gate);
  }
  return doc;
}

std::string SimResult::Summary() const {
  return StrFormat(
      "%s: energy=%.4g (exec=%.4g idle=%.4g, bound=%.4g) misses=%lld "
      "releases=%lld switches=%lld busy=%.1fms idle=%.1fms",
      policy_name.c_str(), total_energy(), exec_energy, idle_energy,
      lower_bound_energy, static_cast<long long>(deadline_misses),
      static_cast<long long>(releases), static_cast<long long>(speed_switches),
      busy_ms, idle_ms);
}

}  // namespace rtdvs
