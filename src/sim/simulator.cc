#include "src/sim/simulator.h"

#include <algorithm>
#include <limits>

#include "src/cpu/lower_bound.h"
#include "src/util/check.h"
#include "src/util/profiler.h"
#include "src/util/strings.h"
#include "src/util/time_eps.h"

namespace rtdvs {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

Simulator::Simulator(TaskSet tasks, MachineSpec machine, DvsPolicy* policy,
                     ExecTimeModel* exec_model, SimOptions options)
    : tasks_(std::move(tasks)),
      machine_(std::move(machine)),
      policy_(policy),
      exec_model_(exec_model),
      options_(options),
      scheduler_(MakeScheduler(policy->scheduler_kind())),
      energy_(options.idle_level, options.energy_coefficient),
      rng_(options.seed),
      accountant_(energy_),
      trace_sink_(&result_.trace) {
  RTDVS_CHECK(policy_ != nullptr);
  RTDVS_CHECK(exec_model_ != nullptr);
  RTDVS_CHECK_GT(options_.horizon_ms, 0.0);
  RTDVS_CHECK(!tasks_.empty()) << "cannot simulate an empty task set";
  RTDVS_CHECK_GE(options_.switch_time_ms, 0.0);
  if (options_.aperiodic.kind != ServerKind::kNone) {
    // The server is an ordinary periodic task as far as schedulers,
    // schedulability tests and DVS policies are concerned.
    server_task_id_ = tasks_.AddTask({"server", options_.aperiodic.period_ms,
                                      options_.aperiodic.budget_ms, 0.0});
    aperiodic_.emplace(options_.aperiodic, options_.seed ^ 0xa9e210d1cULL);
  }
}

Simulator::~Simulator() = default;

double Simulator::NextQueuedEventTime() {
  while (!events_.Empty()) {
    const EngineEvent& top = events_.Top();
    switch (top.type) {
      case EngineEventType::kDeadline:
        // Stale when the job already finished (lazy invalidation) or the
        // deadline was already handled by the value-based miss scan (events
        // within kTimeEpsMs of now are "due now", not scheduling points).
        if (!deadline_live_[top.payload - 1] ||
            top.time_ms <= now_ + kTimeEpsMs) {
          events_.Pop();
          continue;
        }
        return top.time_ms;
      case EngineEventType::kPolicyTimer:
        // Stale when superseded by a newer NextWakeupMs value, or already
        // due (OnWakeup fires from the value check in the event loop; a due
        // timer never becomes a scheduling point of its own).
        if (top.payload != timer_generation_ || top.time_ms <= now_ + kTimeEpsMs) {
          events_.Pop();
          continue;
        }
        return top.time_ms;
      default:
        // Releases are the boot events (t = phase, possibly == now) and
        // always valid; the horizon never staleness-checks.
        return top.time_ms;
    }
  }
  return kInf;
}

void Simulator::ConsumeDueEvents() {
  due_releases_.clear();
  while (!events_.Empty() && events_.Top().time_ms <= now_ + kTimeEpsMs) {
    const EngineEvent event = events_.Pop();
    if (event.type == EngineEventType::kRelease) {
      due_releases_.push_back(event.task_id);
    }
  }
  // Task-id order keeps exec-model RNG draws and policy release callbacks
  // in the order the monolithic per-task scan produced.
  std::sort(due_releases_.begin(), due_releases_.end());
  due_releases_.erase(std::unique(due_releases_.begin(), due_releases_.end()),
                      due_releases_.end());
}

void Simulator::SyncPolicyTimer(const std::optional<double>& wakeup) {
  if (wakeup == queued_wakeup_) {
    return;
  }
  queued_wakeup_ = wakeup;
  ++timer_generation_;
  if (wakeup.has_value() && *wakeup < kInf) {
    events_.Push(*wakeup, EngineEventType::kPolicyTimer, -1, timer_generation_);
  }
}

void Simulator::QueueJobDeadline(Job* job) {
  job->uid = next_job_uid_++;
  deadline_live_.push_back(1);
  // A periodic job's deadline coincides exactly with its task's next release
  // (both are release + period), and ReleaseDueJobs queues that release
  // event unconditionally — so a separate deadline event would be a
  // duplicate scheduling point. Only server jobs need one: CBS wake and
  // postpone set deadlines that track no release.
  if (IsServerJob(*job)) {
    events_.Push(job->deadline_ms, EngineEventType::kDeadline, job->task_id,
                 job->uid);
  }
}

double Simulator::EffectiveRemaining(const Job& job) const {
  if (IsServerJob(job)) {
    return aperiodic_->ServableWork();
  }
  return job.RemainingActualWork();
}

void Simulator::FinalizeJobCompletion(Job* job, double now) {
  job->finished = true;
  job->completion_ms = now;
  deadline_live_[job->uid - 1] = 0;
  if (IsServerJob(*job)) {
    // What the server actually consumed is what DVS bookkeeping (cc_i in
    // ccEDF) may reclaim until the next replenishment.
    job->actual_work = job->executed_work;
  }
  auto& stats = result_.task_stats[static_cast<size_t>(job->task_id)];
  ++stats.completions;
  ++result_.completions;
  double response = now - job->release_ms;
  stats.total_response_ms += response;
  stats.max_response_ms = std::max(stats.max_response_ms, response);
  task_states_[static_cast<size_t>(job->task_id)].last_actual_work = job->actual_work;
  if (options_.record_trace) {
    result_.trace.AddEvent({now, TraceEventKind::kCompletion, job->task_id, {}});
  }
}

bool Simulator::MaybeCompleteServerJob(Job* job, double now) {
  if (job->finished) {
    return false;
  }
  switch (options_.aperiodic.kind) {
    case ServerKind::kPolling:
      // The polling server forfeits its remaining budget the moment it has
      // nothing to serve.
      if (aperiodic_->QueueEmpty() || aperiodic_->budget_remaining() <= kWorkEps) {
        aperiodic_->ForfeitBudget();
        FinalizeJobCompletion(job, now);
        return true;
      }
      break;
    case ServerKind::kDeferrable:
      // The deferrable server keeps unused budget until its deadline.
      if (aperiodic_->budget_remaining() <= kWorkEps) {
        FinalizeJobCompletion(job, now);
        return true;
      }
      break;
    case ServerKind::kCbs:
      // The CBS activation ends when the queue drains; budget exhaustion
      // postpones the deadline instead (handled in the event loop).
      if (aperiodic_->QueueEmpty()) {
        FinalizeJobCompletion(job, now);
        return true;
      }
      break;
    case ServerKind::kNone:
      break;
  }
  return false;
}

void Simulator::ReleaseDueJobs(double now, std::vector<int>* released) {
  for (int id : due_releases_) {
    auto& state = task_states_[static_cast<size_t>(id)];
    const Task& task = tasks_.task(id);
    while (state.next_release_ms <= now + kTimeEpsMs) {
      double fraction = 1.0;
      if (id != server_task_id_) {
        fraction = exec_model_->DrawFraction(id, state.next_invocation, rng_);
      } else {
        aperiodic_->Replenish();
      }
      RTDVS_CHECK_GT(fraction, 0.0);
      if (fraction > 1.0 + kWorkEps) {
        // Overrun-permitting models (ColdStartModel) void the guarantee;
        // the audit's RT oracle keys off this counter.
        ++result_.wcet_overruns;
      }
      Job job;
      job.task_id = id;
      job.invocation = state.next_invocation;
      job.release_ms = state.next_release_ms;
      job.deadline_ms = state.next_release_ms + task.period_ms;
      job.wcet_work = task.wcet_ms;
      job.actual_work = fraction * task.wcet_ms;
      QueueJobDeadline(&job);
      jobs_.push_back(job);
      ++state.next_invocation;
      state.next_release_ms += task.period_ms;
      ++result_.releases;
      ++result_.task_stats[static_cast<size_t>(id)].releases;
      if (options_.record_trace) {
        result_.trace.AddEvent({job.release_ms, TraceEventKind::kRelease, id, {}});
      }
      released->push_back(id);
    }
    if (state.next_release_ms < kInf) {
      events_.Push(state.next_release_ms, EngineEventType::kRelease, id);
    }
  }
}

void Simulator::BuildContext(double now) {
  context_builder_.Build(
      now, jobs_, accountant_.totals(),
      [this](int id) {
        const TaskState& state = task_states_[static_cast<size_t>(id)];
        return ContextBuilder::TaskSnapshot{state.next_release_ms,
                                            state.cumulative_executed,
                                            state.last_actual_work};
      },
      &ctx_);
}

SimResult Simulator::Run() {
  RTDVS_CHECK(!ran_) << "Simulator::Run may be called once";
  ran_ = true;
  if (options_.profile) {
    Profiler::Enable();
  }
  // Counters accumulate over the policy's lifetime and the policy object may
  // be reused across runs; report the per-run delta.
  const PolicyCounters counters_at_start = policy_->counters();

  const size_t n = static_cast<size_t>(tasks_.size());
  task_states_.assign(n, TaskState{});
  result_.task_stats.assign(n, TaskStats{});
  for (size_t id = 0; id < n; ++id) {
    task_states_[id].next_release_ms = tasks_.task(static_cast<int>(id)).phase_ms;
    task_states_[id].last_actual_work = tasks_.task(static_cast<int>(id)).wcet_ms;
  }
  if (options_.aperiodic.kind == ServerKind::kCbs) {
    // A CBS has no periodic releases; its activations are created by the
    // wake/postpone rules in the event loop.
    task_states_[static_cast<size_t>(server_task_id_)].next_release_ms = kInf;
  }
  result_.policy_name = policy_->name();
  result_.scheduler = policy_->scheduler_kind();
  result_.horizon_ms = options_.horizon_ms;
  result_.residency.clear();
  for (const auto& point : machine_.points()) {
    result_.residency.push_back(PointResidency{point, 0, 0, 0, 0});
  }
  result_.trace.set_capacity_limit(options_.max_trace_segments);

  // Wire the engine components for this run.
  TraceSink* sink = options_.record_trace ? &trace_sink_ : nullptr;
  accountant_.Reset();
  accountant_.BindResidency(&machine_, &result_.residency);
  accountant_.set_trace_sink(sink);
  context_builder_.Bind(&tasks_, &machine_);
  ready_.BindScheduler(scheduler_.get());
  ready_.ResetTracking();
  now_ = 0;
  speed_ = std::make_unique<ModeledSpeedController>(
      &machine_, options_.switch_time_ms, &now_, sink);
  events_.Clear();
  deadline_live_.clear();
  next_job_uid_ = 1;
  events_.Push(options_.horizon_ms, EngineEventType::kHorizon);
  for (size_t id = 0; id < n; ++id) {
    if (task_states_[id].next_release_ms < kInf) {
      events_.Push(task_states_[id].next_release_ms, EngineEventType::kRelease,
                   static_cast<int>(id));
    }
  }

  BuildContext(now_);
  policy_->OnStart(ctx_, *speed_);
  std::optional<double> wakeup = policy_->NextWakeupMs(ctx_);
  SyncPolicyTimer(wakeup);

  bool was_idle = false;

  while (now_ < options_.horizon_ms - kTimeEpsMs) {
    RTDVS_PROF_SCOPE("sim/step");
    // A server job holding budget with an empty queue is not runnable.
    if (aperiodic_.has_value()) {
      for (auto& job : jobs_) {
        if (IsServerJob(job) && !job.finished) {
          job.suspended = EffectiveRemaining(job) <= kWorkEps;
        }
      }
    }
    size_t running = ready_.PickTracked(jobs_, tasks_, &result_.preemptions);

    // --- Find the next event. ---
    double t_next = options_.horizon_ms;
    t_next = std::min(t_next, NextQueuedEventTime());
    if (aperiodic_.has_value() && aperiodic_->NextArrivalMs() > now_ + kTimeEpsMs) {
      t_next = std::min(t_next, aperiodic_->NextArrivalMs());
    }
    double exec_start = now_;
    if (running != Scheduler::kNone) {
      // Completion and switch-halt-end depend on the current speed, so they
      // are derived analytically each step rather than queued.
      exec_start = std::max(now_, speed_->blocked_until_ms());
      double frequency = speed_->current().frequency;
      double completion =
          exec_start + EffectiveRemaining(jobs_[running]) / frequency;
      t_next = std::min(t_next, completion);
    }
    RTDVS_CHECK_GT(t_next, now_ - kTimeEpsMs)
        << "event horizon moved backwards at t=" << now_;
    t_next = std::max(t_next, now_);
    t_next = std::min(t_next, options_.horizon_ms);

    // --- Integrate the segment [now_, t_next). ---
    const OperatingPoint point = speed_->current();
    if (running != Scheduler::kNone) {
      exec_start = std::min(std::max(exec_start, now_), t_next);
      // Halted during a transition: time passes, (almost) no energy (§3.1).
      accountant_.RecordSwitchHalt(now_, exec_start, point);
      double exec_dt = t_next - exec_start;
      if (exec_dt > 0) {
        Job& job = jobs_[running];
        double work = exec_dt * point.frequency;
        // Rounding guard: never execute more than the job has left.
        work = std::min(work, EffectiveRemaining(job));
        if (IsServerJob(job)) {
          aperiodic_->Execute(work, t_next, point.frequency);
        }
        job.executed_work += work;
        task_states_[static_cast<size_t>(job.task_id)].cumulative_executed += work;
        result_.task_stats[static_cast<size_t>(job.task_id)].executed_work += work;
        accountant_.RecordExecution(exec_start, t_next, work, job.task_id, point);
      }
    } else {
      // The mandatory halt applies on the idle path too: an OnIdle (or
      // completion-time) speed change with switch_time_ms > 0 halts the
      // processor just as it does before execution resumes. Charge the halt
      // window to switching_ms — not idle energy at the new point.
      double halt_end = std::clamp(speed_->blocked_until_ms(), now_, t_next);
      accountant_.RecordSwitchHalt(now_, halt_end, point);
      accountant_.RecordIdle(halt_end, t_next, point);
    }
    now_ = t_next;
    if (now_ >= options_.horizon_ms - kTimeEpsMs) {
      break;
    }

    // --- Apply state changes due at now_: arrivals, completions, misses,
    // releases. ---
    ConsumeDueEvents();
    if (aperiodic_.has_value()) {
      aperiodic_->AdmitArrivals(now_);
    }
    std::vector<int> completed;
    for (auto& job : jobs_) {
      if (job.finished) {
        continue;
      }
      if (IsServerJob(job)) {
        if (MaybeCompleteServerJob(&job, now_)) {
          completed.push_back(job.task_id);
        }
      } else if (job.RemainingActualWork() <= kWorkEps) {
        FinalizeJobCompletion(&job, now_);
        completed.push_back(job.task_id);
      }
    }
    std::vector<int> released;
    // CBS management: wake on arrivals, postpone on budget exhaustion.
    // Either action manifests as completion/release pairs so DVS policies
    // observe the server exactly like any periodic task.
    if (options_.aperiodic.kind == ServerKind::kCbs) {
      Job* active_server = nullptr;
      for (auto& job : jobs_) {
        if (IsServerJob(job) && !job.finished) {
          active_server = &job;
          break;
        }
      }
      if (active_server != nullptr &&
          (aperiodic_->budget_remaining() <= kWorkEps ||
           active_server->deadline_ms <= now_ + kTimeEpsMs)) {
        FinalizeJobCompletion(active_server, now_);
        completed.push_back(active_server->task_id);
        double new_deadline = aperiodic_->CbsPostpone();
        Job replacement;
        replacement.task_id = server_task_id_;
        replacement.invocation =
            task_states_[static_cast<size_t>(server_task_id_)].next_invocation++;
        replacement.release_ms = now_;
        replacement.deadline_ms = new_deadline;
        replacement.wcet_work = options_.aperiodic.budget_ms;
        replacement.actual_work = options_.aperiodic.budget_ms;
        QueueJobDeadline(&replacement);
        jobs_.push_back(replacement);
        ++result_.releases;
        ++result_.task_stats[static_cast<size_t>(server_task_id_)].releases;
        released.push_back(server_task_id_);
      } else if (active_server == nullptr && !aperiodic_->QueueEmpty()) {
        double deadline = aperiodic_->CbsWake(now_);
        Job job;
        job.task_id = server_task_id_;
        job.invocation =
            task_states_[static_cast<size_t>(server_task_id_)].next_invocation++;
        job.release_ms = now_;
        job.deadline_ms = deadline;
        job.wcet_work = options_.aperiodic.budget_ms;
        job.actual_work = options_.aperiodic.budget_ms;
        QueueJobDeadline(&job);
        jobs_.push_back(job);
        ++result_.releases;
        ++result_.task_stats[static_cast<size_t>(server_task_id_)].releases;
        released.push_back(server_task_id_);
      }
    }
    for (auto& job : jobs_) {
      if (job.finished || job.deadline_ms > now_ + kTimeEpsMs) {
        continue;
      }
      if (IsServerJob(job)) {
        // A server has no deadline obligation of its own: at the end of its
        // period the old budget expires and the job simply retires.
        FinalizeJobCompletion(&job, now_);
        completed.push_back(job.task_id);
        continue;
      }
      if (!job.missed) {
        job.missed = true;
        ++result_.deadline_misses;
        ++result_.task_stats[static_cast<size_t>(job.task_id)].deadline_misses;
        if (options_.record_trace) {
          result_.trace.AddEvent({now_, TraceEventKind::kDeadlineMiss, job.task_id, {}});
        }
        if (options_.miss_policy == MissPolicy::kAbortJob) {
          job.finished = true;
          job.completion_ms = now_;
          deadline_live_[job.uid - 1] = 0;
          // Aborted jobs do not count as completions and record no response.
          ++result_.aborted;
          ++result_.task_stats[static_cast<size_t>(job.task_id)].aborted;
        }
      }
    }
    ReleaseDueJobs(now_, &released);

    // A freshly released polling-server job with an empty queue retires on
    // the spot (its completion callback must follow its release callback).
    std::vector<int> completed_after_release;
    if (aperiodic_.has_value()) {
      for (auto& job : jobs_) {
        if (IsServerJob(job) && !job.finished && MaybeCompleteServerJob(&job, now_)) {
          completed_after_release.push_back(job.task_id);
        }
      }
    }

    // Drop finished jobs (after stats were recorded above).
    jobs_.erase(std::remove_if(jobs_.begin(), jobs_.end(),
                               [](const Job& job) { return job.finished; }),
                jobs_.end());

    // --- Policy callbacks: completions first, then releases. ---
    {
      RTDVS_PROF_SCOPE("sim/policy/callbacks");
      BuildContext(now_);
      for (int task_id : completed) {
        policy_->OnTaskCompletion(task_id, ctx_, *speed_);
      }
      for (int task_id : released) {
        policy_->OnTaskRelease(task_id, ctx_, *speed_);
      }
      for (int task_id : completed_after_release) {
        policy_->OnTaskCompletion(task_id, ctx_, *speed_);
      }

      // Timer wakeup (non-RT interval baseline).
      if (wakeup.has_value() && *wakeup <= now_ + kTimeEpsMs) {
        policy_->OnWakeup(ctx_, *speed_);
      }
      wakeup = policy_->NextWakeupMs(ctx_);
      SyncPolicyTimer(wakeup);

      // Idle notification: fires once per idle period.
      bool any_unfinished = false;
      for (const auto& job : jobs_) {
        if (!job.finished) {
          any_unfinished = true;
          break;
        }
      }
      if (!any_unfinished && !was_idle) {
        policy_->OnIdle(ctx_, *speed_);
        if (options_.record_trace) {
          result_.trace.AddEvent({now_, TraceEventKind::kIdleStart, -1, {}});
        }
      }
      was_idle = !any_unfinished;
    }
  }

  const EngineTotals& totals = accountant_.totals();
  result_.busy_ms = totals.busy_ms;
  result_.idle_ms = totals.idle_ms;
  result_.switching_ms = totals.switching_ms;
  result_.total_work_executed = totals.work;
  result_.exec_energy = totals.exec_energy;
  result_.idle_energy = totals.idle_energy;
  result_.speed_switches = speed_->switch_count();
  result_.lower_bound_energy = MinimumExecutionEnergy(
      result_.total_work_executed, options_.horizon_ms, machine_,
      EnergyModel(0.0, options_.energy_coefficient));
  result_.server_task_id = server_task_id_;
  for (const auto& job : jobs_) {
    if (!job.finished) {
      ++result_.unfinished_at_horizon;
      ++result_.task_stats[static_cast<size_t>(job.task_id)].unfinished;
    }
  }
  if (aperiodic_.has_value()) {
    aperiodic_->FinalizeStats();
    result_.aperiodic = aperiodic_->stats();
  }
  result_.policy_counters = policy_->counters().DiffSince(counters_at_start);
  if (options_.audit) {
    AuditInputs inputs;
    inputs.tasks = &tasks_;
    inputs.machine = &machine_;
    inputs.options = &options_;
    inputs.policy_guarantees_deadlines = policy_->guarantees_deadlines();
    result_.audit = AuditSimResult(result_, inputs);
  }
  // Bank this run's spans while still on the thread that recorded them
  // (sweep worker threads are retired with the pool).
  Profiler::FlushThisThread();
  return result_;
}

// The RunSimulation convenience wrappers are defined in mp_simulator.cc:
// they route through the M=1 cluster path so the legacy API and the
// SimRequest API share one entry point (and one audit story).

std::string SimResult::Summary() const {
  return StrFormat(
      "%s: energy=%.4g (exec=%.4g idle=%.4g, bound=%.4g) misses=%lld "
      "releases=%lld switches=%lld busy=%.1fms idle=%.1fms",
      policy_name.c_str(), total_energy(), exec_energy, idle_energy,
      lower_bound_energy, static_cast<long long>(deadline_misses),
      static_cast<long long>(releases), static_cast<long long>(speed_switches),
      busy_ms, idle_ms);
}

}  // namespace rtdvs
