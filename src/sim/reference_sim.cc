#include "src/sim/reference_sim.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include "src/cpu/lower_bound.h"
#include "src/util/check.h"
#include "src/util/time_eps.h"

namespace rtdvs {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// The reference's own job record. Mirrors the semantics of rt/job.h but is
// deliberately a separate type so the engine cannot accidentally share
// helper logic with production code.
struct RefJob {
  int task_id = -1;
  int64_t invocation = 0;
  double release_ms = 0;
  double deadline_ms = 0;
  double wcet_work = 0;
  double actual_work = 0;
  double executed_work = 0;
  bool finished = false;
  bool missed = false;
};

// Minimal SpeedController: tracks the current point, counts transitions, and
// records the end of the mandatory halt window.
class RefSpeed : public SpeedController {
 public:
  RefSpeed(const MachineSpec* machine, const double* now, double switch_time_ms,
           int64_t* switches)
      : machine_(machine),
        now_(now),
        switch_time_ms_(switch_time_ms),
        switches_(switches),
        point_(machine->max_point()) {}

  void SetOperatingPoint(const OperatingPoint& point) override {
    machine_->IndexOf(point);  // aborts if the policy invented a point
    if (point == point_) {
      return;
    }
    point_ = point;
    *switches_ += 1;
    if (switch_time_ms_ > 0) {
      blocked_until_ = std::max(blocked_until_, *now_ + switch_time_ms_);
    }
  }

  const OperatingPoint& current() const override { return point_; }
  double blocked_until() const { return blocked_until_; }

 private:
  const MachineSpec* machine_;
  const double* now_;
  double switch_time_ms_;
  int64_t* switches_;
  OperatingPoint point_;
  double blocked_until_ = 0;
};

// The whole engine state lives in one struct so every helper can recompute
// whatever it needs from scratch.
struct RefEngine {
  const TaskSet& tasks;
  const MachineSpec& machine;
  DvsPolicy& policy;
  ExecTimeModel& exec_model;
  const SimOptions& options;
  const ReferenceFaults& faults;

  std::vector<double> next_release;
  std::vector<int64_t> next_invocation;
  std::vector<double> cumulative_executed;
  std::vector<double> last_actual_work;
  std::vector<RefJob> jobs;  // creation order; finished jobs pruned per event
  Pcg32 rng;
  double now = 0;
  SimResult result;

  RefEngine(const TaskSet& tasks_in, const MachineSpec& machine_in,
            DvsPolicy& policy_in, ExecTimeModel& exec_model_in,
            const SimOptions& options_in, const ReferenceFaults& faults_in)
      : tasks(tasks_in),
        machine(machine_in),
        policy(policy_in),
        exec_model(exec_model_in),
        options(options_in),
        faults(faults_in),
        rng(options_in.seed) {}

  int num_tasks() const { return tasks.size(); }

  // --- Ready queue, recomputed from scratch: sort every unfinished job by
  // the scheduler's priority order and take the front. ---
  // EDF rank: (absolute deadline, task id, release). RM rank: (period,
  // task id, release). Returns -1 when nothing is runnable.
  int PickJobIndex() const {
    std::vector<int> ready;
    for (int i = 0; i < static_cast<int>(jobs.size()); ++i) {
      if (!jobs[static_cast<size_t>(i)].finished) {
        ready.push_back(i);
      }
    }
    if (ready.empty()) {
      return -1;
    }
    const bool edf = policy.scheduler_kind() == SchedulerKind::kEdf;
    std::stable_sort(ready.begin(), ready.end(), [&](int ia, int ib) {
      const RefJob& a = jobs[static_cast<size_t>(ia)];
      const RefJob& b = jobs[static_cast<size_t>(ib)];
      double ka = edf ? a.deadline_ms : tasks.task(a.task_id).period_ms;
      double kb = edf ? b.deadline_ms : tasks.task(b.task_id).period_ms;
      if (ka != kb) {
        return ka < kb;
      }
      if (a.task_id != b.task_id) {
        return a.task_id < b.task_id;
      }
      return a.release_ms < b.release_ms;
    });
    return ready.front();
  }

  // --- Policy context, recomputed from scratch at every call. ---
  PolicyContext BuildContext() const {
    PolicyContext ctx;
    ctx.now_ms = now;
    ctx.tasks = &tasks;
    ctx.machine = &machine;
    ctx.cumulative_busy_ms = result.busy_ms;
    ctx.cumulative_idle_ms = result.idle_ms;
    ctx.cumulative_work = result.total_work_executed;
    ctx.views.resize(static_cast<size_t>(num_tasks()));
    for (int id = 0; id < num_tasks(); ++id) {
      auto& view = ctx.views[static_cast<size_t>(id)];
      view.has_active_job = false;
      view.next_deadline_ms = next_release[static_cast<size_t>(id)];
      view.executed_in_invocation = 0;
      view.worst_case_remaining = 0;
      view.cumulative_executed = cumulative_executed[static_cast<size_t>(id)];
      view.last_actual_work = last_actual_work[static_cast<size_t>(id)];
    }
    // The "current invocation" of a task is its earliest-released unfinished
    // job.
    std::vector<double> chosen_release(static_cast<size_t>(num_tasks()), kInf);
    for (const RefJob& job : jobs) {
      if (job.finished) {
        continue;
      }
      auto i = static_cast<size_t>(job.task_id);
      if (job.release_ms < chosen_release[i]) {
        chosen_release[i] = job.release_ms;
        ctx.views[i].has_active_job = true;
        ctx.views[i].next_deadline_ms = job.deadline_ms;
        ctx.views[i].executed_in_invocation = job.executed_work;
        ctx.views[i].worst_case_remaining =
            std::max(0.0, job.wcet_work - job.executed_work);
      }
    }
    return ctx;
  }

  void FinalizeCompletion(RefJob* job) {
    job->finished = true;
    auto& stats = result.task_stats[static_cast<size_t>(job->task_id)];
    stats.completions += 1;
    result.completions += 1;
    double response = now - job->release_ms;
    stats.total_response_ms += response;
    stats.max_response_ms = std::max(stats.max_response_ms, response);
    last_actual_work[static_cast<size_t>(job->task_id)] = job->actual_work;
  }

  // Completions due at `now`; returns affected task ids in job-creation
  // order (the callback order of the contract).
  std::vector<int> ProcessCompletions() {
    std::vector<int> completed;
    for (RefJob& job : jobs) {
      if (!job.finished && job.actual_work - job.executed_work <= kWorkEps) {
        FinalizeCompletion(&job);
        completed.push_back(job.task_id);
      }
    }
    return completed;
  }

  void ProcessMisses() {
    for (RefJob& job : jobs) {
      if (job.finished || job.missed || job.deadline_ms > now + kTimeEpsMs) {
        continue;
      }
      job.missed = true;
      result.deadline_misses += 1;
      result.task_stats[static_cast<size_t>(job.task_id)].deadline_misses += 1;
      if (options.miss_policy == MissPolicy::kAbortJob) {
        job.finished = true;
        result.aborted += 1;
        result.task_stats[static_cast<size_t>(job.task_id)].aborted += 1;
      }
    }
  }

  // Releases due at `now`, in task-id order; one execution-model draw per
  // release (this order defines how the model consumes randomness).
  std::vector<int> ProcessReleases() {
    std::vector<int> released;
    for (int id = 0; id < num_tasks(); ++id) {
      auto i = static_cast<size_t>(id);
      const Task& task = tasks.task(id);
      while (next_release[i] <= now + kTimeEpsMs) {
        double fraction = exec_model.DrawFraction(id, next_invocation[i], rng);
        RTDVS_CHECK_GT(fraction, 0.0);
        if (fraction > 1.0 + kWorkEps) {
          result.wcet_overruns += 1;
        }
        RefJob job;
        job.task_id = id;
        job.invocation = next_invocation[i];
        job.release_ms = next_release[i];
        job.deadline_ms = next_release[i] + task.period_ms;
        job.wcet_work = task.wcet_ms;
        job.actual_work = fraction * task.wcet_ms;
        jobs.push_back(job);
        next_invocation[i] += 1;
        next_release[i] += task.period_ms;
        result.releases += 1;
        result.task_stats[i].releases += 1;
        released.push_back(id);
      }
    }
    return released;
  }

  // Earliest next event strictly within the contract's tolerance rules.
  double NextEventTime(int running, const RefSpeed& speed,
                       const std::optional<double>& wakeup) const {
    double t = options.horizon_ms;
    for (double r : next_release) {
      t = std::min(t, r);
    }
    for (const RefJob& job : jobs) {
      if (!job.finished && job.deadline_ms > now + kTimeEpsMs) {
        t = std::min(t, job.deadline_ms);
      }
    }
    if (wakeup.has_value() && *wakeup > now + kTimeEpsMs) {
      t = std::min(t, *wakeup);
    }
    if (running >= 0) {
      const RefJob& job = jobs[static_cast<size_t>(running)];
      double exec_start = std::max(now, speed.blocked_until());
      double remaining = job.actual_work - job.executed_work;
      t = std::min(t, exec_start + remaining / speed.current().frequency);
    }
    return std::min(std::max(t, now), options.horizon_ms);
  }

  // Charge the wall-time segment [now, t_next) to switching / execution /
  // idle, integrating energy from first principles.
  void IntegrateSegment(int running, const RefSpeed& speed, double t_next) {
    const OperatingPoint point = speed.current();
    const double volt_sq = point.voltage * point.voltage;
    auto& residency = result.residency[machine.IndexOf(point)];
    if (running >= 0) {
      double exec_start =
          std::min(std::max(std::max(now, speed.blocked_until()), now), t_next);
      double switch_dt = exec_start - now;
      if (switch_dt > 0) {
        result.switching_ms += switch_dt;
      }
      double exec_dt = t_next - exec_start;
      if (exec_dt > 0) {
        RefJob& job = jobs[static_cast<size_t>(running)];
        double work = exec_dt * point.frequency;
        work = std::min(work, job.actual_work - job.executed_work);
        job.executed_work += work;
        cumulative_executed[static_cast<size_t>(job.task_id)] += work;
        result.task_stats[static_cast<size_t>(job.task_id)].executed_work += work;
        result.total_work_executed += work;
        result.busy_ms += exec_dt;
        double joules = work * volt_sq * options.energy_coefficient;
        result.exec_energy += joules;
        residency.exec_ms += exec_dt;
        residency.exec_energy += joules;
      }
    } else {
      double halt_end = std::clamp(speed.blocked_until(), now, t_next);
      if (faults.idle_path_switch_bug) {
        // Injected historical bug: the whole window is treated as idle at
        // the (new) point — the halt is never charged to switching_ms.
        halt_end = now;
      }
      double switch_dt = halt_end - now;
      if (switch_dt > 0) {
        result.switching_ms += switch_dt;
      }
      double idle_dt = t_next - halt_end;
      if (idle_dt > 0) {
        result.idle_ms += idle_dt;
        double joules = idle_dt * point.frequency * volt_sq *
                        options.idle_level * options.energy_coefficient;
        result.idle_energy += joules;
        residency.idle_ms += idle_dt;
        residency.idle_energy += joules;
      }
    }
  }

  SimResult Run() {
    const int n = num_tasks();
    next_release.assign(static_cast<size_t>(n), 0.0);
    next_invocation.assign(static_cast<size_t>(n), 0);
    cumulative_executed.assign(static_cast<size_t>(n), 0.0);
    last_actual_work.assign(static_cast<size_t>(n), 0.0);
    result.task_stats.assign(static_cast<size_t>(n), TaskStats{});
    for (int id = 0; id < n; ++id) {
      next_release[static_cast<size_t>(id)] = tasks.task(id).phase_ms;
      last_actual_work[static_cast<size_t>(id)] = tasks.task(id).wcet_ms;
    }
    result.policy_name = policy.name();
    result.scheduler = policy.scheduler_kind();
    result.horizon_ms = options.horizon_ms;
    for (const OperatingPoint& point : machine.points()) {
      result.residency.push_back(PointResidency{point, 0, 0, 0, 0});
    }

    const PolicyCounters counters_at_start = policy.counters();
    RefSpeed speed(&machine, &now, options.switch_time_ms, &result.speed_switches);
    {
      PolicyContext ctx = BuildContext();
      policy.OnStart(ctx, speed);
    }
    std::optional<double> wakeup;
    {
      PolicyContext ctx = BuildContext();
      wakeup = policy.NextWakeupMs(ctx);
    }

    bool was_idle = false;
    int prev_task = -1;
    int64_t prev_invocation = -1;

    while (now < options.horizon_ms - kTimeEpsMs) {
      const int running = PickJobIndex();

      // Preemption accounting (diagnostic parity with production): another
      // job takes over while the previously running one still has work.
      if (running >= 0) {
        const RefJob& job = jobs[static_cast<size_t>(running)];
        if (prev_task >= 0 &&
            (job.task_id != prev_task || job.invocation != prev_invocation)) {
          for (const RefJob& other : jobs) {
            if (other.task_id == prev_task && other.invocation == prev_invocation &&
                !other.finished) {
              result.preemptions += 1;
              break;
            }
          }
        }
        prev_task = job.task_id;
        prev_invocation = job.invocation;
      }

      const double t_next = NextEventTime(running, speed, wakeup);
      IntegrateSegment(running, speed, t_next);
      now = t_next;
      if (now >= options.horizon_ms - kTimeEpsMs) {
        break;
      }

      // State changes due at `now`: completions, then misses, then
      // releases (the miss_before_completion fault inverts the first two).
      std::vector<int> completed;
      if (faults.miss_before_completion_bug) {
        ProcessMisses();
        completed = ProcessCompletions();
      } else {
        completed = ProcessCompletions();
        ProcessMisses();
      }
      std::vector<int> released = ProcessReleases();
      jobs.erase(std::remove_if(jobs.begin(), jobs.end(),
                                [](const RefJob& job) { return job.finished; }),
                 jobs.end());

      // Policy callbacks after all state changes: completions first, then
      // releases, then any due timer wakeup; OnIdle once per idle period.
      PolicyContext ctx = BuildContext();
      for (int task_id : completed) {
        policy.OnTaskCompletion(task_id, ctx, speed);
      }
      for (int task_id : released) {
        policy.OnTaskRelease(task_id, ctx, speed);
      }
      if (wakeup.has_value() && *wakeup <= now + kTimeEpsMs) {
        policy.OnWakeup(ctx, speed);
      }
      wakeup = policy.NextWakeupMs(ctx);

      bool any_unfinished = false;
      for (const RefJob& job : jobs) {
        if (!job.finished) {
          any_unfinished = true;
          break;
        }
      }
      if (!any_unfinished && !was_idle) {
        policy.OnIdle(ctx, speed);
      }
      was_idle = !any_unfinished;
    }

    for (const RefJob& job : jobs) {
      if (!job.finished) {
        result.unfinished_at_horizon += 1;
        result.task_stats[static_cast<size_t>(job.task_id)].unfinished += 1;
      }
    }
    result.lower_bound_energy = MinimumExecutionEnergy(
        result.total_work_executed, options.horizon_ms, machine,
        EnergyModel(0.0, options.energy_coefficient));
    result.server_task_id = -1;
    result.policy_counters = policy.counters().DiffSince(counters_at_start);
    return result;
  }
};

// ---------------------------------------------------------------------------
// Multiprocessor oracle. Everything below reimplements the cluster contract
// (src/engine/cluster.h admission tables, src/sim/mp_simulator.h driver
// semantics) from scratch; only the shared value types (PartitionResult,
// MpSimResult, PolicyCounters) come from production headers.
// ---------------------------------------------------------------------------

// Liu-Layland bound, recomputed locally: n * (2^(1/n) - 1).
double RefRmBound(int n) {
  if (n <= 0) {
    return 1.0;
  }
  return n * (std::pow(2.0, 1.0 / n) - 1.0);
}

// Admission test for adding a task of utilization `u` to a core currently
// holding `count` tasks summing to `total_u` (same arithmetic order as
// production: current sum plus candidate, compared with +1e-9 slack).
bool RefCoreAdmits(SchedulerKind kind, double total_u, int count, double u) {
  const double bound =
      kind == SchedulerKind::kEdf ? 1.0 : RefRmBound(count + 1);
  return total_u + u <= bound + 1e-9;
}

// Bin-packing admission, reimplemented with a gather-then-select shape
// instead of production's per-heuristic scan loops.
PartitionResult RefPartitionTasks(const TaskSet& tasks, int num_cores,
                                  PartitionHeuristic heuristic,
                                  const std::vector<SchedulerKind>& kinds) {
  PartitionResult result;
  result.core_of_task.assign(static_cast<size_t>(tasks.size()), -1);
  result.core_utilization.assign(static_cast<size_t>(num_cores), 0.0);
  result.core_task_count.assign(static_cast<size_t>(num_cores), 0);
  int cursor = 0;  // next-fit scan start; never rewinds
  for (int id = 0; id < tasks.size(); ++id) {
    const double u = tasks.task(id).utilization();
    std::vector<int> admitting;
    const int first = heuristic == PartitionHeuristic::kNextFit ? cursor : 0;
    for (int c = first; c < num_cores; ++c) {
      const auto cc = static_cast<size_t>(c);
      if (RefCoreAdmits(kinds[cc], result.core_utilization[cc],
                        result.core_task_count[cc], u)) {
        admitting.push_back(c);
      }
    }
    int chosen = -1;
    if (!admitting.empty()) {
      switch (heuristic) {
        case PartitionHeuristic::kFirstFit:
        case PartitionHeuristic::kNextFit:
          chosen = admitting.front();
          break;
        case PartitionHeuristic::kBestFit:
        case PartitionHeuristic::kWorstFit: {
          chosen = admitting.front();
          for (int c : admitting) {
            const double cur = result.core_utilization[static_cast<size_t>(c)];
            const double best =
                result.core_utilization[static_cast<size_t>(chosen)];
            // Strict comparisons keep ties at the lowest admitting index.
            if (heuristic == PartitionHeuristic::kBestFit ? cur > best
                                                          : cur < best) {
              chosen = c;
            }
          }
          break;
        }
      }
    }
    if (chosen < 0) {
      result = PartitionResult{};
      result.core_of_task.assign(static_cast<size_t>(tasks.size()), -1);
      result.core_utilization.assign(static_cast<size_t>(num_cores), 0.0);
      result.core_task_count.assign(static_cast<size_t>(num_cores), 0);
      result.error = "reference: task " + std::to_string(id) + " fits nowhere";
      return result;
    }
    if (heuristic == PartitionHeuristic::kNextFit) {
      cursor = chosen;
    }
    result.core_of_task[static_cast<size_t>(id)] = chosen;
    result.core_utilization[static_cast<size_t>(chosen)] += u;
    result.core_task_count[static_cast<size_t>(chosen)] += 1;
  }
  result.feasible = true;
  for (int count : result.core_task_count) {
    if (count > 0) {
      result.cores_used += 1;
    }
  }
  return result;
}

// A core the partition left empty: powered down, whole horizon idle at the
// machine's minimum point, zero energy.
SimResult RefPoweredDownSlice(const MachineSpec& machine,
                              const SimOptions& options) {
  SimResult slice;
  slice.policy_name = "off";
  slice.horizon_ms = options.horizon_ms;
  slice.idle_ms = options.horizon_ms;
  for (const OperatingPoint& point : machine.points()) {
    slice.residency.push_back(PointResidency{point, 0, 0, 0, 0});
  }
  slice.residency.front().idle_ms = options.horizon_ms;
  return slice;
}

// Field-wise slice-into-cluster summation (traces untouched; task stats
// mapped back through the core's global ids).
void RefAccumulate(const SimResult& slice, const std::vector<int>& global_ids,
                   SimResult* cluster) {
  cluster->exec_energy += slice.exec_energy;
  cluster->idle_energy += slice.idle_energy;
  cluster->busy_ms += slice.busy_ms;
  cluster->idle_ms += slice.idle_ms;
  cluster->switching_ms += slice.switching_ms;
  cluster->total_work_executed += slice.total_work_executed;
  cluster->releases += slice.releases;
  cluster->completions += slice.completions;
  cluster->deadline_misses += slice.deadline_misses;
  cluster->aborted += slice.aborted;
  cluster->unfinished_at_horizon += slice.unfinished_at_horizon;
  cluster->wcet_overruns += slice.wcet_overruns;
  cluster->speed_switches += slice.speed_switches;
  cluster->preemptions += slice.preemptions;
  cluster->policy_counters.MergeFrom(slice.policy_counters);
  cluster->lower_bound_energy += slice.lower_bound_energy;
  for (size_t i = 0; i < slice.residency.size(); ++i) {
    cluster->residency[i].exec_ms += slice.residency[i].exec_ms;
    cluster->residency[i].idle_ms += slice.residency[i].idle_ms;
    cluster->residency[i].exec_energy += slice.residency[i].exec_energy;
    cluster->residency[i].idle_energy += slice.residency[i].idle_energy;
  }
  for (size_t local = 0; local < slice.task_stats.size(); ++local) {
    cluster->task_stats[static_cast<size_t>(global_ids[local])] =
        slice.task_stats[local];
  }
}

// Local-to-global id translation for a partitioned core's sub-task-set;
// invocation indices pass through (a partitioned task runs on one core, so
// its local invocation sequence is its global one).
class RefScopedExecModel : public ExecTimeModel {
 public:
  RefScopedExecModel(ExecTimeModel* inner, const std::vector<int>* global_ids)
      : inner_(inner), global_ids_(global_ids) {}
  std::string name() const override { return inner_->name(); }
  double DrawFraction(int task_id, int64_t invocation, Pcg32& rng) override {
    return inner_->DrawFraction((*global_ids_)[static_cast<size_t>(task_id)],
                                invocation, rng);
  }

 private:
  ExecTimeModel* inner_;
  const std::vector<int>* global_ids_;
};

std::string RefClusterPolicyName(
    const std::vector<std::unique_ptr<DvsPolicy>>& policies) {
  std::string name = policies.front()->name();
  for (const auto& policy : policies) {
    if (policy->name() != name) {
      name += "+" + policy->name();
    }
  }
  return name;
}

// Global-mode reference engine: cluster-wide job list, from-scratch ranking
// at every event, per-core first-principles integration.
struct RefClusterEngine {
  const TaskSet& tasks;
  const MachineSpec& machine;
  const SimOptions& options;
  const ReferenceFaults& faults;
  std::vector<std::unique_ptr<DvsPolicy>>& policies;
  ExecTimeModel& exec_model;
  const int num_cores;
  const bool edf;

  std::vector<double> next_release;
  std::vector<int64_t> next_invocation;
  std::vector<double> cumulative_executed;
  std::vector<double> last_actual_work;
  std::vector<RefJob> jobs;  // creation order
  // Parallel to jobs: last core each job ran on (-1 = never) and whether it
  // held a core in the previous segment.
  std::vector<int> last_core;
  std::vector<char> was_dispatched;
  Pcg32 rng;
  double now = 0;
  MpSimResult out;

  RefClusterEngine(const SimRequest& request,
                   std::vector<std::unique_ptr<DvsPolicy>>& policies_in,
                   ExecTimeModel& exec_model_in, const ReferenceFaults& faults_in)
      : tasks(request.tasks),
        machine(request.cluster.machine),
        options(request.options),
        faults(faults_in),
        policies(policies_in),
        exec_model(exec_model_in),
        num_cores(request.cluster.num_cores),
        edf(policies_in.front()->scheduler_kind() == SchedulerKind::kEdf),
        rng(request.options.seed) {}

  int num_tasks() const { return tasks.size(); }

  // The up-to-M highest-priority unfinished jobs, at most one per task, in
  // priority order: (deadline | period, task id, release).
  std::vector<int> PickTopJobs() const {
    std::vector<int> order;
    for (int i = 0; i < static_cast<int>(jobs.size()); ++i) {
      if (!jobs[static_cast<size_t>(i)].finished) {
        order.push_back(i);
      }
    }
    std::stable_sort(order.begin(), order.end(), [&](int ia, int ib) {
      const RefJob& a = jobs[static_cast<size_t>(ia)];
      const RefJob& b = jobs[static_cast<size_t>(ib)];
      double ka = edf ? a.deadline_ms : tasks.task(a.task_id).period_ms;
      double kb = edf ? b.deadline_ms : tasks.task(b.task_id).period_ms;
      if (ka != kb) {
        return ka < kb;
      }
      if (a.task_id != b.task_id) {
        return a.task_id < b.task_id;
      }
      return a.release_ms < b.release_ms;
    });
    std::vector<int> picked;
    std::vector<char> taken(static_cast<size_t>(num_tasks()), 0);
    for (int index : order) {
      if (static_cast<int>(picked.size()) == num_cores) {
        break;
      }
      auto tid = static_cast<size_t>(jobs[static_cast<size_t>(index)].task_id);
      if (taken[tid]) {
        continue;
      }
      taken[tid] = 1;
      picked.push_back(index);
    }
    return picked;
  }

  // Affinity assignment: keep a job on its previous core when free, then
  // fill free cores lowest-index-first in priority order. Off-core landings
  // count migrations.
  std::vector<int> AssignCores(const std::vector<int>& picked) {
    std::vector<int> core_job(static_cast<size_t>(num_cores), -1);
    std::vector<char> placed(picked.size(), 0);
    for (size_t p = 0; p < picked.size(); ++p) {
      const int prev = last_core[static_cast<size_t>(picked[p])];
      if (prev >= 0 && core_job[static_cast<size_t>(prev)] < 0) {
        core_job[static_cast<size_t>(prev)] = picked[p];
        placed[p] = 1;
      }
    }
    int scan = 0;
    for (size_t p = 0; p < picked.size(); ++p) {
      if (placed[p]) {
        continue;
      }
      while (core_job[static_cast<size_t>(scan)] >= 0) {
        ++scan;
      }
      core_job[static_cast<size_t>(scan)] = picked[p];
      const auto jp = static_cast<size_t>(picked[p]);
      if (last_core[jp] >= 0 && last_core[jp] != scan) {
        out.migrations += 1;
      }
      last_core[jp] = scan;
    }
    return core_job;
  }

  PolicyContext BuildContext() const {
    PolicyContext ctx;
    ctx.now_ms = now;
    ctx.tasks = &tasks;
    ctx.machine = &machine;
    for (const SimResult& slice : out.cores) {
      ctx.cumulative_busy_ms += slice.busy_ms;
      ctx.cumulative_idle_ms += slice.idle_ms;
      ctx.cumulative_work += slice.total_work_executed;
    }
    ctx.views.resize(static_cast<size_t>(num_tasks()));
    for (int id = 0; id < num_tasks(); ++id) {
      auto& view = ctx.views[static_cast<size_t>(id)];
      view.has_active_job = false;
      view.next_deadline_ms = next_release[static_cast<size_t>(id)];
      view.executed_in_invocation = 0;
      view.worst_case_remaining = 0;
      view.cumulative_executed = cumulative_executed[static_cast<size_t>(id)];
      view.last_actual_work = last_actual_work[static_cast<size_t>(id)];
    }
    std::vector<double> chosen_release(static_cast<size_t>(num_tasks()), kInf);
    for (const RefJob& job : jobs) {
      if (job.finished) {
        continue;
      }
      auto i = static_cast<size_t>(job.task_id);
      if (job.release_ms < chosen_release[i]) {
        chosen_release[i] = job.release_ms;
        ctx.views[i].has_active_job = true;
        ctx.views[i].next_deadline_ms = job.deadline_ms;
        ctx.views[i].executed_in_invocation = job.executed_work;
        ctx.views[i].worst_case_remaining =
            std::max(0.0, job.wcet_work - job.executed_work);
      }
    }
    return ctx;
  }

  double NextEventTime(const std::vector<int>& core_job,
                       const std::vector<RefSpeed>& speeds,
                       const std::vector<std::optional<double>>& wakeup) const {
    double t = options.horizon_ms;
    for (double r : next_release) {
      t = std::min(t, r);
    }
    for (const RefJob& job : jobs) {
      if (!job.finished && job.deadline_ms > now + kTimeEpsMs) {
        t = std::min(t, job.deadline_ms);
      }
    }
    for (int c = 0; c < num_cores; ++c) {
      const auto cc = static_cast<size_t>(c);
      if (wakeup[cc].has_value() && *wakeup[cc] > now + kTimeEpsMs) {
        t = std::min(t, *wakeup[cc]);
      }
      if (core_job[cc] >= 0) {
        const RefJob& job = jobs[static_cast<size_t>(core_job[cc])];
        double exec_start = std::max(now, speeds[cc].blocked_until());
        double remaining = job.actual_work - job.executed_work;
        t = std::min(t, exec_start + remaining / speeds[cc].current().frequency);
      }
    }
    return std::min(std::max(t, now), options.horizon_ms);
  }

  // Charge [now, t_next) on core `c` to switching / execution / idle.
  void IntegrateCore(int c, int job_index, const RefSpeed& speed, double t_next) {
    SimResult& slice = out.cores[static_cast<size_t>(c)];
    const OperatingPoint point = speed.current();
    const double volt_sq = point.voltage * point.voltage;
    auto& residency = slice.residency[machine.IndexOf(point)];
    if (job_index >= 0) {
      double exec_start = std::clamp(speed.blocked_until(), now, t_next);
      double switch_dt = exec_start - now;
      if (switch_dt > 0) {
        slice.switching_ms += switch_dt;
      }
      double exec_dt = t_next - exec_start;
      if (exec_dt > 0) {
        RefJob& job = jobs[static_cast<size_t>(job_index)];
        double work = exec_dt * point.frequency;
        work = std::min(work, job.actual_work - job.executed_work);
        job.executed_work += work;
        cumulative_executed[static_cast<size_t>(job.task_id)] += work;
        out.cluster.task_stats[static_cast<size_t>(job.task_id)].executed_work +=
            work;
        slice.total_work_executed += work;
        slice.busy_ms += exec_dt;
        double joules = work * volt_sq * options.energy_coefficient;
        slice.exec_energy += joules;
        residency.exec_ms += exec_dt;
        residency.exec_energy += joules;
      }
    } else {
      double halt_end = std::clamp(speed.blocked_until(), now, t_next);
      if (faults.idle_path_switch_bug) {
        halt_end = now;  // injected: the halt is never charged to switching
      }
      double switch_dt = halt_end - now;
      if (switch_dt > 0) {
        slice.switching_ms += switch_dt;
      }
      double idle_dt = t_next - halt_end;
      if (idle_dt > 0) {
        slice.idle_ms += idle_dt;
        double joules = idle_dt * point.frequency * volt_sq *
                        options.idle_level * options.energy_coefficient;
        slice.idle_energy += joules;
        residency.idle_ms += idle_dt;
        residency.idle_energy += joules;
      }
    }
  }

  std::vector<int> ProcessCompletions() {
    std::vector<int> completed;
    for (RefJob& job : jobs) {
      if (!job.finished && job.actual_work - job.executed_work <= kWorkEps) {
        job.finished = true;
        auto& stats = out.cluster.task_stats[static_cast<size_t>(job.task_id)];
        stats.completions += 1;
        out.cluster.completions += 1;
        double response = now - job.release_ms;
        stats.total_response_ms += response;
        stats.max_response_ms = std::max(stats.max_response_ms, response);
        last_actual_work[static_cast<size_t>(job.task_id)] = job.actual_work;
        completed.push_back(job.task_id);
      }
    }
    return completed;
  }

  void ProcessMisses() {
    for (RefJob& job : jobs) {
      if (job.finished || job.missed || job.deadline_ms > now + kTimeEpsMs) {
        continue;
      }
      job.missed = true;
      out.cluster.deadline_misses += 1;
      out.cluster.task_stats[static_cast<size_t>(job.task_id)].deadline_misses +=
          1;
      if (options.miss_policy == MissPolicy::kAbortJob) {
        job.finished = true;
        out.cluster.aborted += 1;
        out.cluster.task_stats[static_cast<size_t>(job.task_id)].aborted += 1;
      }
    }
  }

  std::vector<int> ProcessReleases() {
    std::vector<int> released;
    for (int id = 0; id < num_tasks(); ++id) {
      auto i = static_cast<size_t>(id);
      const Task& task = tasks.task(id);
      while (next_release[i] <= now + kTimeEpsMs) {
        double fraction = exec_model.DrawFraction(id, next_invocation[i], rng);
        RTDVS_CHECK_GT(fraction, 0.0);
        if (fraction > 1.0 + kWorkEps) {
          out.cluster.wcet_overruns += 1;
        }
        RefJob job;
        job.task_id = id;
        job.invocation = next_invocation[i];
        job.release_ms = next_release[i];
        job.deadline_ms = next_release[i] + task.period_ms;
        job.wcet_work = task.wcet_ms;
        job.actual_work = fraction * task.wcet_ms;
        jobs.push_back(job);
        last_core.push_back(-1);
        was_dispatched.push_back(0);
        next_invocation[i] += 1;
        next_release[i] += task.period_ms;
        out.cluster.releases += 1;
        out.cluster.task_stats[i].releases += 1;
        released.push_back(id);
      }
    }
    return released;
  }

  void PruneFinished() {
    size_t kept = 0;
    for (size_t i = 0; i < jobs.size(); ++i) {
      if (jobs[i].finished) {
        continue;
      }
      jobs[kept] = jobs[i];
      last_core[kept] = last_core[i];
      was_dispatched[kept] = was_dispatched[i];
      ++kept;
    }
    jobs.resize(kept);
    last_core.resize(kept);
    was_dispatched.resize(kept);
  }

  MpSimResult Run() {
    const int n = num_tasks();
    const auto m = static_cast<size_t>(num_cores);
    out.mode = MpMode::kGlobal;
    out.num_cores = num_cores;
    out.admitted = true;
    out.partition.feasible = true;
    out.partition.cores_used = num_cores;
    out.partition.core_of_task.assign(static_cast<size_t>(n), -1);
    out.partition.core_utilization.assign(m, 0.0);
    out.partition.core_task_count.assign(m, 0);
    out.core_tasks.assign(m, tasks);
    out.core_global_ids.assign(m, {});
    for (size_t c = 0; c < m; ++c) {
      for (int id = 0; id < n; ++id) {
        out.core_global_ids[c].push_back(id);
      }
    }
    out.cores.resize(m);
    out.cluster.horizon_ms = options.horizon_ms;
    out.cluster.task_stats.assign(static_cast<size_t>(n), TaskStats{});
    for (const OperatingPoint& point : machine.points()) {
      out.cluster.residency.push_back(PointResidency{point, 0, 0, 0, 0});
    }

    next_release.assign(static_cast<size_t>(n), 0.0);
    next_invocation.assign(static_cast<size_t>(n), 0);
    cumulative_executed.assign(static_cast<size_t>(n), 0.0);
    last_actual_work.assign(static_cast<size_t>(n), 0.0);
    for (int id = 0; id < n; ++id) {
      next_release[static_cast<size_t>(id)] = tasks.task(id).phase_ms;
      last_actual_work[static_cast<size_t>(id)] = tasks.task(id).wcet_ms;
    }

    std::vector<RefSpeed> speeds;
    std::vector<PolicyCounters> counters_at_start(m);
    for (size_t c = 0; c < m; ++c) {
      SimResult& slice = out.cores[c];
      slice.policy_name = policies[c]->name();
      slice.scheduler = policies[c]->scheduler_kind();
      slice.horizon_ms = options.horizon_ms;
      for (const OperatingPoint& point : machine.points()) {
        slice.residency.push_back(PointResidency{point, 0, 0, 0, 0});
      }
      speeds.emplace_back(&machine, &now, options.switch_time_ms,
                          &slice.speed_switches);
      counters_at_start[c] = policies[c]->counters();
    }

    std::vector<std::optional<double>> wakeup(m);
    std::vector<char> was_idle(m, 0);
    {
      PolicyContext ctx = BuildContext();
      for (size_t c = 0; c < m; ++c) {
        policies[c]->OnStart(ctx, speeds[c]);
      }
    }
    {
      PolicyContext ctx = BuildContext();
      for (size_t c = 0; c < m; ++c) {
        wakeup[c] = policies[c]->NextWakeupMs(ctx);
      }
    }

    while (now < options.horizon_ms - kTimeEpsMs) {
      const std::vector<int> picked = PickTopJobs();
      const std::vector<int> core_job = AssignCores(picked);

      // Preemption accounting: a job that held a core in the previous
      // segment, still unfinished, and holds none now.
      std::vector<char> holds(jobs.size(), 0);
      for (size_t c = 0; c < m; ++c) {
        if (core_job[c] >= 0) {
          holds[static_cast<size_t>(core_job[c])] = 1;
        }
      }
      for (size_t i = 0; i < jobs.size(); ++i) {
        if (was_dispatched[i] && !holds[i] && !jobs[i].finished) {
          out.cluster.preemptions += 1;
        }
      }
      was_dispatched = holds;

      const double t_next = NextEventTime(core_job, speeds, wakeup);

      // One OnIdle per idle period per core, only ahead of a segment with
      // real length.
      if (t_next > now + kTimeEpsMs) {
        bool any = false;
        for (size_t c = 0; c < m; ++c) {
          if (core_job[c] < 0 && !was_idle[c]) {
            any = true;
          }
        }
        PolicyContext ctx;
        if (any) {
          ctx = BuildContext();
        }
        for (size_t c = 0; c < m; ++c) {
          if (core_job[c] >= 0) {
            was_idle[c] = 0;
          } else if (!was_idle[c]) {
            policies[c]->OnIdle(ctx, speeds[c]);
            was_idle[c] = 1;
          }
        }
      }

      for (int c = 0; c < num_cores; ++c) {
        IntegrateCore(c, core_job[static_cast<size_t>(c)],
                      speeds[static_cast<size_t>(c)], t_next);
      }
      now = t_next;
      if (now >= options.horizon_ms - kTimeEpsMs) {
        break;
      }

      std::vector<int> completed;
      if (faults.miss_before_completion_bug) {
        ProcessMisses();
        completed = ProcessCompletions();
      } else {
        completed = ProcessCompletions();
        ProcessMisses();
      }
      std::vector<int> released = ProcessReleases();
      PruneFinished();

      PolicyContext ctx = BuildContext();
      for (int task_id : completed) {
        for (size_t c = 0; c < m; ++c) {
          policies[c]->OnTaskCompletion(task_id, ctx, speeds[c]);
        }
      }
      for (int task_id : released) {
        for (size_t c = 0; c < m; ++c) {
          policies[c]->OnTaskRelease(task_id, ctx, speeds[c]);
        }
      }
      for (size_t c = 0; c < m; ++c) {
        if (wakeup[c].has_value() && *wakeup[c] <= now + kTimeEpsMs) {
          policies[c]->OnWakeup(ctx, speeds[c]);
        }
        wakeup[c] = policies[c]->NextWakeupMs(ctx);
      }
    }

    for (const RefJob& job : jobs) {
      if (!job.finished) {
        out.cluster.unfinished_at_horizon += 1;
        out.cluster.task_stats[static_cast<size_t>(job.task_id)].unfinished += 1;
      }
    }
    for (size_t c = 0; c < m; ++c) {
      out.cores[c].policy_counters =
          policies[c]->counters().DiffSince(counters_at_start[c]);
      RefAccumulate(out.cores[c], {}, &out.cluster);
    }
    // Cluster bound: per-core bound at an even work split (convexity makes
    // the even split the cheapest division over identical cores).
    out.cluster.lower_bound_energy =
        num_cores * MinimumExecutionEnergy(
                        out.cluster.total_work_executed / num_cores,
                        options.horizon_ms, machine,
                        EnergyModel(0.0, options.energy_coefficient));
    out.cluster.policy_name = RefClusterPolicyName(policies);
    out.cluster.scheduler = policies.front()->scheduler_kind();
    return std::move(out);
  }
};

}  // namespace

SimResult RunReferenceSimulation(const TaskSet& tasks, const MachineSpec& machine,
                                 DvsPolicy& policy, ExecTimeModel& exec_model,
                                 const SimOptions& options,
                                 const ReferenceFaults& faults) {
  RTDVS_CHECK(!tasks.empty()) << "cannot simulate an empty task set";
  RTDVS_CHECK_GT(options.horizon_ms, 0.0);
  RTDVS_CHECK_GE(options.switch_time_ms, 0.0);
  RTDVS_CHECK(options.aperiodic.kind == ServerKind::kNone)
      << "the reference simulator does not model aperiodic servers";
  RefEngine engine(tasks, machine, policy, exec_model, options, faults);
  return engine.Run();
}

SimResult RunReferenceSimulation(const TaskSet& tasks, const MachineSpec& machine,
                                 const std::string& policy_id,
                                 ExecTimeModel& exec_model, const SimOptions& options,
                                 const ReferenceFaults& faults) {
  std::unique_ptr<DvsPolicy> policy = MakePolicy(policy_id);
  return RunReferenceSimulation(tasks, machine, *policy, exec_model, options, faults);
}

MpSimResult RunReferenceClusterSimulation(const SimRequest& request,
                                          ExecTimeModel& exec_model,
                                          const ReferenceFaults& faults) {
  const int num_cores = request.cluster.num_cores;
  RTDVS_CHECK_GE(num_cores, 1);
  RTDVS_CHECK(!request.tasks.empty()) << "cannot simulate an empty task set";
  RTDVS_CHECK_GT(request.options.horizon_ms, 0.0);
  RTDVS_CHECK_GE(request.options.switch_time_ms, 0.0);
  RTDVS_CHECK(!request.policy_ids.empty());
  RTDVS_CHECK(request.policy_ids.size() == 1 ||
              static_cast<int>(request.policy_ids.size()) == num_cores);
  std::vector<std::unique_ptr<DvsPolicy>> policies;
  for (int c = 0; c < num_cores; ++c) {
    const std::string& id = request.policy_ids.size() == 1
                                ? request.policy_ids.front()
                                : request.policy_ids[static_cast<size_t>(c)];
    policies.push_back(MakePolicy(id));
  }

  MpSimResult out;
  out.mode = request.mode;
  out.num_cores = num_cores;

  auto init_cluster = [&](int num_stats) {
    out.cluster.horizon_ms = request.options.horizon_ms;
    out.cluster.task_stats.assign(static_cast<size_t>(num_stats), TaskStats{});
    for (const OperatingPoint& point : request.cluster.machine.points()) {
      out.cluster.residency.push_back(PointResidency{point, 0, 0, 0, 0});
    }
  };

  if (num_cores == 1) {
    // Mirror production routing: M = 1 is the single-core engine, whatever
    // the requested mode.
    out.admitted = true;
    out.partition.feasible = true;
    out.partition.core_of_task.assign(static_cast<size_t>(request.tasks.size()),
                                      0);
    out.partition.core_utilization = {request.tasks.TotalUtilization()};
    out.partition.core_task_count = {request.tasks.size()};
    out.partition.cores_used = 1;
    out.core_tasks = {request.tasks};
    out.core_global_ids.resize(1);
    for (int id = 0; id < request.tasks.size(); ++id) {
      out.core_global_ids[0].push_back(id);
    }
    out.cores.resize(1);
    out.cores[0] =
        RunReferenceSimulation(request.tasks, request.cluster.machine,
                               *policies[0], exec_model, request.options, faults);
    init_cluster(static_cast<int>(out.cores[0].task_stats.size()));
    RefAccumulate(out.cores[0], out.core_global_ids[0], &out.cluster);
    out.cluster.policy_name = RefClusterPolicyName(policies);
    out.cluster.scheduler = policies.front()->scheduler_kind();
    return out;
  }

  RTDVS_CHECK(request.options.aperiodic.kind == ServerKind::kNone)
      << "aperiodic servers are supported only at num_cores == 1";

  if (request.mode == MpMode::kGlobal) {
    for (const auto& policy : policies) {
      RTDVS_CHECK(policy->scheduler_kind() == policies.front()->scheduler_kind())
          << "global mode needs one scheduler kind across all cores";
    }
    return RefClusterEngine(request, policies, exec_model, faults).Run();
  }

  std::vector<SchedulerKind> kinds;
  for (const auto& policy : policies) {
    kinds.push_back(policy->scheduler_kind());
  }
  out.partition =
      RefPartitionTasks(request.tasks, num_cores, request.partition, kinds);
  out.cores.resize(static_cast<size_t>(num_cores));
  if (!out.partition.feasible) {
    out.admitted = false;
    return out;
  }
  out.admitted = true;
  out.core_tasks.assign(static_cast<size_t>(num_cores), TaskSet{});
  out.core_global_ids.assign(static_cast<size_t>(num_cores), {});
  for (int id = 0; id < request.tasks.size(); ++id) {
    const int core = out.partition.core_of_task[static_cast<size_t>(id)];
    out.core_tasks[static_cast<size_t>(core)].AddTask(request.tasks.task(id));
    out.core_global_ids[static_cast<size_t>(core)].push_back(id);
  }
  init_cluster(request.tasks.size());
  for (int core = 0; core < num_cores; ++core) {
    const auto c = static_cast<size_t>(core);
    if (out.core_tasks[c].empty()) {
      out.cores[c] = RefPoweredDownSlice(request.cluster.machine, request.options);
    } else {
      SimOptions core_options = request.options;
      core_options.seed = request.options.seed ^
                          (0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(core));
      RefScopedExecModel scoped(&exec_model, &out.core_global_ids[c]);
      out.cores[c] =
          RunReferenceSimulation(out.core_tasks[c], request.cluster.machine,
                                 *policies[c], scoped, core_options, faults);
    }
    RefAccumulate(out.cores[c], out.core_global_ids[c], &out.cluster);
  }
  out.cluster.policy_name = RefClusterPolicyName(policies);
  out.cluster.scheduler = policies.front()->scheduler_kind();
  return out;
}

}  // namespace rtdvs
