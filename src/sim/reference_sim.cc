#include "src/sim/reference_sim.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <vector>

#include "src/cpu/lower_bound.h"
#include "src/util/check.h"
#include "src/util/time_eps.h"

namespace rtdvs {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// The reference's own job record. Mirrors the semantics of rt/job.h but is
// deliberately a separate type so the engine cannot accidentally share
// helper logic with production code.
struct RefJob {
  int task_id = -1;
  int64_t invocation = 0;
  double release_ms = 0;
  double deadline_ms = 0;
  double wcet_work = 0;
  double actual_work = 0;
  double executed_work = 0;
  bool finished = false;
  bool missed = false;
};

// Minimal SpeedController: tracks the current point, counts transitions, and
// records the end of the mandatory halt window.
class RefSpeed : public SpeedController {
 public:
  RefSpeed(const MachineSpec* machine, const double* now, double switch_time_ms,
           int64_t* switches)
      : machine_(machine),
        now_(now),
        switch_time_ms_(switch_time_ms),
        switches_(switches),
        point_(machine->max_point()) {}

  void SetOperatingPoint(const OperatingPoint& point) override {
    machine_->IndexOf(point);  // aborts if the policy invented a point
    if (point == point_) {
      return;
    }
    point_ = point;
    *switches_ += 1;
    if (switch_time_ms_ > 0) {
      blocked_until_ = std::max(blocked_until_, *now_ + switch_time_ms_);
    }
  }

  const OperatingPoint& current() const override { return point_; }
  double blocked_until() const { return blocked_until_; }

 private:
  const MachineSpec* machine_;
  const double* now_;
  double switch_time_ms_;
  int64_t* switches_;
  OperatingPoint point_;
  double blocked_until_ = 0;
};

// The whole engine state lives in one struct so every helper can recompute
// whatever it needs from scratch.
struct RefEngine {
  const TaskSet& tasks;
  const MachineSpec& machine;
  DvsPolicy& policy;
  ExecTimeModel& exec_model;
  const SimOptions& options;
  const ReferenceFaults& faults;

  std::vector<double> next_release;
  std::vector<int64_t> next_invocation;
  std::vector<double> cumulative_executed;
  std::vector<double> last_actual_work;
  std::vector<RefJob> jobs;  // creation order; finished jobs pruned per event
  Pcg32 rng;
  double now = 0;
  SimResult result;

  RefEngine(const TaskSet& tasks_in, const MachineSpec& machine_in,
            DvsPolicy& policy_in, ExecTimeModel& exec_model_in,
            const SimOptions& options_in, const ReferenceFaults& faults_in)
      : tasks(tasks_in),
        machine(machine_in),
        policy(policy_in),
        exec_model(exec_model_in),
        options(options_in),
        faults(faults_in),
        rng(options_in.seed) {}

  int num_tasks() const { return tasks.size(); }

  // --- Ready queue, recomputed from scratch: sort every unfinished job by
  // the scheduler's priority order and take the front. ---
  // EDF rank: (absolute deadline, task id, release). RM rank: (period,
  // task id, release). Returns -1 when nothing is runnable.
  int PickJobIndex() const {
    std::vector<int> ready;
    for (int i = 0; i < static_cast<int>(jobs.size()); ++i) {
      if (!jobs[static_cast<size_t>(i)].finished) {
        ready.push_back(i);
      }
    }
    if (ready.empty()) {
      return -1;
    }
    const bool edf = policy.scheduler_kind() == SchedulerKind::kEdf;
    std::stable_sort(ready.begin(), ready.end(), [&](int ia, int ib) {
      const RefJob& a = jobs[static_cast<size_t>(ia)];
      const RefJob& b = jobs[static_cast<size_t>(ib)];
      double ka = edf ? a.deadline_ms : tasks.task(a.task_id).period_ms;
      double kb = edf ? b.deadline_ms : tasks.task(b.task_id).period_ms;
      if (ka != kb) {
        return ka < kb;
      }
      if (a.task_id != b.task_id) {
        return a.task_id < b.task_id;
      }
      return a.release_ms < b.release_ms;
    });
    return ready.front();
  }

  // --- Policy context, recomputed from scratch at every call. ---
  PolicyContext BuildContext() const {
    PolicyContext ctx;
    ctx.now_ms = now;
    ctx.tasks = &tasks;
    ctx.machine = &machine;
    ctx.cumulative_busy_ms = result.busy_ms;
    ctx.cumulative_idle_ms = result.idle_ms;
    ctx.cumulative_work = result.total_work_executed;
    ctx.views.resize(static_cast<size_t>(num_tasks()));
    for (int id = 0; id < num_tasks(); ++id) {
      auto& view = ctx.views[static_cast<size_t>(id)];
      view.has_active_job = false;
      view.next_deadline_ms = next_release[static_cast<size_t>(id)];
      view.executed_in_invocation = 0;
      view.worst_case_remaining = 0;
      view.cumulative_executed = cumulative_executed[static_cast<size_t>(id)];
      view.last_actual_work = last_actual_work[static_cast<size_t>(id)];
    }
    // The "current invocation" of a task is its earliest-released unfinished
    // job.
    std::vector<double> chosen_release(static_cast<size_t>(num_tasks()), kInf);
    for (const RefJob& job : jobs) {
      if (job.finished) {
        continue;
      }
      auto i = static_cast<size_t>(job.task_id);
      if (job.release_ms < chosen_release[i]) {
        chosen_release[i] = job.release_ms;
        ctx.views[i].has_active_job = true;
        ctx.views[i].next_deadline_ms = job.deadline_ms;
        ctx.views[i].executed_in_invocation = job.executed_work;
        ctx.views[i].worst_case_remaining =
            std::max(0.0, job.wcet_work - job.executed_work);
      }
    }
    return ctx;
  }

  void FinalizeCompletion(RefJob* job) {
    job->finished = true;
    auto& stats = result.task_stats[static_cast<size_t>(job->task_id)];
    stats.completions += 1;
    result.completions += 1;
    double response = now - job->release_ms;
    stats.total_response_ms += response;
    stats.max_response_ms = std::max(stats.max_response_ms, response);
    last_actual_work[static_cast<size_t>(job->task_id)] = job->actual_work;
  }

  // Completions due at `now`; returns affected task ids in job-creation
  // order (the callback order of the contract).
  std::vector<int> ProcessCompletions() {
    std::vector<int> completed;
    for (RefJob& job : jobs) {
      if (!job.finished && job.actual_work - job.executed_work <= kWorkEps) {
        FinalizeCompletion(&job);
        completed.push_back(job.task_id);
      }
    }
    return completed;
  }

  void ProcessMisses() {
    for (RefJob& job : jobs) {
      if (job.finished || job.missed || job.deadline_ms > now + kTimeEpsMs) {
        continue;
      }
      job.missed = true;
      result.deadline_misses += 1;
      result.task_stats[static_cast<size_t>(job.task_id)].deadline_misses += 1;
      if (options.miss_policy == MissPolicy::kAbortJob) {
        job.finished = true;
        result.aborted += 1;
        result.task_stats[static_cast<size_t>(job.task_id)].aborted += 1;
      }
    }
  }

  // Releases due at `now`, in task-id order; one execution-model draw per
  // release (this order defines how the model consumes randomness).
  std::vector<int> ProcessReleases() {
    std::vector<int> released;
    for (int id = 0; id < num_tasks(); ++id) {
      auto i = static_cast<size_t>(id);
      const Task& task = tasks.task(id);
      while (next_release[i] <= now + kTimeEpsMs) {
        double fraction = exec_model.DrawFraction(id, next_invocation[i], rng);
        RTDVS_CHECK_GT(fraction, 0.0);
        if (fraction > 1.0 + kWorkEps) {
          result.wcet_overruns += 1;
        }
        RefJob job;
        job.task_id = id;
        job.invocation = next_invocation[i];
        job.release_ms = next_release[i];
        job.deadline_ms = next_release[i] + task.period_ms;
        job.wcet_work = task.wcet_ms;
        job.actual_work = fraction * task.wcet_ms;
        jobs.push_back(job);
        next_invocation[i] += 1;
        next_release[i] += task.period_ms;
        result.releases += 1;
        result.task_stats[i].releases += 1;
        released.push_back(id);
      }
    }
    return released;
  }

  // Earliest next event strictly within the contract's tolerance rules.
  double NextEventTime(int running, const RefSpeed& speed,
                       const std::optional<double>& wakeup) const {
    double t = options.horizon_ms;
    for (double r : next_release) {
      t = std::min(t, r);
    }
    for (const RefJob& job : jobs) {
      if (!job.finished && job.deadline_ms > now + kTimeEpsMs) {
        t = std::min(t, job.deadline_ms);
      }
    }
    if (wakeup.has_value() && *wakeup > now + kTimeEpsMs) {
      t = std::min(t, *wakeup);
    }
    if (running >= 0) {
      const RefJob& job = jobs[static_cast<size_t>(running)];
      double exec_start = std::max(now, speed.blocked_until());
      double remaining = job.actual_work - job.executed_work;
      t = std::min(t, exec_start + remaining / speed.current().frequency);
    }
    return std::min(std::max(t, now), options.horizon_ms);
  }

  // Charge the wall-time segment [now, t_next) to switching / execution /
  // idle, integrating energy from first principles.
  void IntegrateSegment(int running, const RefSpeed& speed, double t_next) {
    const OperatingPoint point = speed.current();
    const double volt_sq = point.voltage * point.voltage;
    auto& residency = result.residency[machine.IndexOf(point)];
    if (running >= 0) {
      double exec_start =
          std::min(std::max(std::max(now, speed.blocked_until()), now), t_next);
      double switch_dt = exec_start - now;
      if (switch_dt > 0) {
        result.switching_ms += switch_dt;
      }
      double exec_dt = t_next - exec_start;
      if (exec_dt > 0) {
        RefJob& job = jobs[static_cast<size_t>(running)];
        double work = exec_dt * point.frequency;
        work = std::min(work, job.actual_work - job.executed_work);
        job.executed_work += work;
        cumulative_executed[static_cast<size_t>(job.task_id)] += work;
        result.task_stats[static_cast<size_t>(job.task_id)].executed_work += work;
        result.total_work_executed += work;
        result.busy_ms += exec_dt;
        double joules = work * volt_sq * options.energy_coefficient;
        result.exec_energy += joules;
        residency.exec_ms += exec_dt;
        residency.exec_energy += joules;
      }
    } else {
      double halt_end = std::clamp(speed.blocked_until(), now, t_next);
      if (faults.idle_path_switch_bug) {
        // Injected historical bug: the whole window is treated as idle at
        // the (new) point — the halt is never charged to switching_ms.
        halt_end = now;
      }
      double switch_dt = halt_end - now;
      if (switch_dt > 0) {
        result.switching_ms += switch_dt;
      }
      double idle_dt = t_next - halt_end;
      if (idle_dt > 0) {
        result.idle_ms += idle_dt;
        double joules = idle_dt * point.frequency * volt_sq *
                        options.idle_level * options.energy_coefficient;
        result.idle_energy += joules;
        residency.idle_ms += idle_dt;
        residency.idle_energy += joules;
      }
    }
  }

  SimResult Run() {
    const int n = num_tasks();
    next_release.assign(static_cast<size_t>(n), 0.0);
    next_invocation.assign(static_cast<size_t>(n), 0);
    cumulative_executed.assign(static_cast<size_t>(n), 0.0);
    last_actual_work.assign(static_cast<size_t>(n), 0.0);
    result.task_stats.assign(static_cast<size_t>(n), TaskStats{});
    for (int id = 0; id < n; ++id) {
      next_release[static_cast<size_t>(id)] = tasks.task(id).phase_ms;
      last_actual_work[static_cast<size_t>(id)] = tasks.task(id).wcet_ms;
    }
    result.policy_name = policy.name();
    result.scheduler = policy.scheduler_kind();
    result.horizon_ms = options.horizon_ms;
    for (const OperatingPoint& point : machine.points()) {
      result.residency.push_back(PointResidency{point, 0, 0, 0, 0});
    }

    const PolicyCounters counters_at_start = policy.counters();
    RefSpeed speed(&machine, &now, options.switch_time_ms, &result.speed_switches);
    {
      PolicyContext ctx = BuildContext();
      policy.OnStart(ctx, speed);
    }
    std::optional<double> wakeup;
    {
      PolicyContext ctx = BuildContext();
      wakeup = policy.NextWakeupMs(ctx);
    }

    bool was_idle = false;
    int prev_task = -1;
    int64_t prev_invocation = -1;

    while (now < options.horizon_ms - kTimeEpsMs) {
      const int running = PickJobIndex();

      // Preemption accounting (diagnostic parity with production): another
      // job takes over while the previously running one still has work.
      if (running >= 0) {
        const RefJob& job = jobs[static_cast<size_t>(running)];
        if (prev_task >= 0 &&
            (job.task_id != prev_task || job.invocation != prev_invocation)) {
          for (const RefJob& other : jobs) {
            if (other.task_id == prev_task && other.invocation == prev_invocation &&
                !other.finished) {
              result.preemptions += 1;
              break;
            }
          }
        }
        prev_task = job.task_id;
        prev_invocation = job.invocation;
      }

      const double t_next = NextEventTime(running, speed, wakeup);
      IntegrateSegment(running, speed, t_next);
      now = t_next;
      if (now >= options.horizon_ms - kTimeEpsMs) {
        break;
      }

      // State changes due at `now`: completions, then misses, then
      // releases (the miss_before_completion fault inverts the first two).
      std::vector<int> completed;
      if (faults.miss_before_completion_bug) {
        ProcessMisses();
        completed = ProcessCompletions();
      } else {
        completed = ProcessCompletions();
        ProcessMisses();
      }
      std::vector<int> released = ProcessReleases();
      jobs.erase(std::remove_if(jobs.begin(), jobs.end(),
                                [](const RefJob& job) { return job.finished; }),
                 jobs.end());

      // Policy callbacks after all state changes: completions first, then
      // releases, then any due timer wakeup; OnIdle once per idle period.
      PolicyContext ctx = BuildContext();
      for (int task_id : completed) {
        policy.OnTaskCompletion(task_id, ctx, speed);
      }
      for (int task_id : released) {
        policy.OnTaskRelease(task_id, ctx, speed);
      }
      if (wakeup.has_value() && *wakeup <= now + kTimeEpsMs) {
        policy.OnWakeup(ctx, speed);
      }
      wakeup = policy.NextWakeupMs(ctx);

      bool any_unfinished = false;
      for (const RefJob& job : jobs) {
        if (!job.finished) {
          any_unfinished = true;
          break;
        }
      }
      if (!any_unfinished && !was_idle) {
        policy.OnIdle(ctx, speed);
      }
      was_idle = !any_unfinished;
    }

    for (const RefJob& job : jobs) {
      if (!job.finished) {
        result.unfinished_at_horizon += 1;
        result.task_stats[static_cast<size_t>(job.task_id)].unfinished += 1;
      }
    }
    result.lower_bound_energy = MinimumExecutionEnergy(
        result.total_work_executed, options.horizon_ms, machine,
        EnergyModel(0.0, options.energy_coefficient));
    result.server_task_id = -1;
    result.policy_counters = policy.counters().DiffSince(counters_at_start);
    return result;
  }
};

}  // namespace

SimResult RunReferenceSimulation(const TaskSet& tasks, const MachineSpec& machine,
                                 DvsPolicy& policy, ExecTimeModel& exec_model,
                                 const SimOptions& options,
                                 const ReferenceFaults& faults) {
  RTDVS_CHECK(!tasks.empty()) << "cannot simulate an empty task set";
  RTDVS_CHECK_GT(options.horizon_ms, 0.0);
  RTDVS_CHECK_GE(options.switch_time_ms, 0.0);
  RTDVS_CHECK(options.aperiodic.kind == ServerKind::kNone)
      << "the reference simulator does not model aperiodic servers";
  RefEngine engine(tasks, machine, policy, exec_model, options, faults);
  return engine.Run();
}

SimResult RunReferenceSimulation(const TaskSet& tasks, const MachineSpec& machine,
                                 const std::string& policy_id,
                                 ExecTimeModel& exec_model, const SimOptions& options,
                                 const ReferenceFaults& faults) {
  std::unique_ptr<DvsPolicy> policy = MakePolicy(policy_id);
  return RunReferenceSimulation(tasks, machine, *policy, exec_model, options, faults);
}

}  // namespace rtdvs
