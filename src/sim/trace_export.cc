#include "src/sim/trace_export.h"

#include <string>

#include "src/cpu/energy_model.h"
#include "src/rt/task.h"
#include "src/sim/metrics.h"
#include "src/sim/simulator.h"
#include "src/util/json.h"
#include "src/util/strings.h"

namespace rtdvs {
namespace {

// One process, tid 0 for the CPU (idle/switching) track, tid task_id + 1
// for each task track. Task id 0 would otherwise collide with the CPU tid.
constexpr int kPid = 0;
constexpr int kCpuTid = 0;

int TaskTid(int task_id) { return task_id + 1; }

double ToMicros(double ms) { return ms * 1000.0; }

JsonValue MetadataEvent(const char* name, int tid, const std::string& value) {
  JsonValue event = JsonValue::Object();
  event.Set("name", name);
  event.Set("ph", "M");
  event.Set("pid", kPid);
  event.Set("tid", tid);
  event.Set("args", JsonValue::Object()).Set("name", value);
  return event;
}

const char* EventKindName(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kRelease:
      return "release";
    case TraceEventKind::kCompletion:
      return "completion";
    case TraceEventKind::kDeadlineMiss:
      return "deadline_miss";
    case TraceEventKind::kSpeedChange:
      return "speed_change";
    case TraceEventKind::kIdleStart:
      return "idle_start";
  }
  return "?";
}

}  // namespace

JsonValue ExportChromeTrace(const SimResult& result, const TaskSet& tasks,
                            const SimOptions& options) {
  const EnergyModel energy(options.idle_level, options.energy_coefficient);
  JsonValue doc = JsonValue::Object();
  JsonValue& events = doc.Set("traceEvents", JsonValue::Array());

  // Track naming metadata first: process, CPU track, one track per task.
  events.Append(MetadataEvent("process_name", kCpuTid,
                              "rtdvs-sim " + result.policy_name));
  events.Append(MetadataEvent("thread_name", kCpuTid, "cpu (idle/switch)"));
  for (int id = 0; id < tasks.size(); ++id) {
    const Task& task = tasks.task(id);
    events.Append(MetadataEvent(
        "thread_name", TaskTid(id),
        StrFormat("%s (C=%g T=%g)", task.name.c_str(), task.wcet_ms,
                  task.period_ms)));
  }

  // Frequency/voltage counter track, stepped at every operating-point
  // change. Derived from the segments themselves (not the kSpeedChange
  // events) so the counter value in effect over any slice re-integrates
  // exactly to the energy that slice reports.
  const OperatingPoint* last_point = nullptr;
  for (const auto& segment : result.trace.segments()) {
    if (last_point != nullptr && segment.point == *last_point) {
      continue;
    }
    last_point = &segment.point;
    JsonValue counter = JsonValue::Object();
    counter.Set("name", "frequency");
    counter.Set("ph", "C");
    counter.Set("ts", ToMicros(segment.start_ms));
    counter.Set("pid", kPid);
    JsonValue& args = counter.Set("args", JsonValue::Object());
    args.Set("frequency", segment.point.frequency);
    args.Set("voltage", segment.point.voltage);
    events.Append(std::move(counter));
  }

  // Complete ("X") slices: execution on the task tracks, idle/switching on
  // the CPU track.
  for (const auto& segment : result.trace.segments()) {
    const double wall_ms = segment.end_ms - segment.start_ms;
    JsonValue slice = JsonValue::Object();
    switch (segment.state) {
      case CpuState::kExecuting: {
        slice.Set("name", tasks.task(segment.task_id).name);
        slice.Set("tid", TaskTid(segment.task_id));
        const double work = wall_ms * segment.point.frequency;
        JsonValue& args = slice.Set("args", JsonValue::Object());
        args.Set("frequency", segment.point.frequency);
        args.Set("voltage", segment.point.voltage);
        args.Set("work", work);
        args.Set("energy", energy.ExecutionEnergy(work, segment.point));
        break;
      }
      case CpuState::kIdle: {
        slice.Set("name", "idle");
        slice.Set("tid", kCpuTid);
        JsonValue& args = slice.Set("args", JsonValue::Object());
        args.Set("frequency", segment.point.frequency);
        args.Set("voltage", segment.point.voltage);
        args.Set("energy", energy.IdleEnergy(wall_ms, segment.point));
        break;
      }
      case CpuState::kSwitching: {
        slice.Set("name", "switch");
        slice.Set("tid", kCpuTid);
        JsonValue& args = slice.Set("args", JsonValue::Object());
        args.Set("frequency", segment.point.frequency);
        args.Set("voltage", segment.point.voltage);
        break;
      }
    }
    slice.Set("ph", "X");
    slice.Set("ts", ToMicros(segment.start_ms));
    slice.Set("dur", ToMicros(wall_ms));
    slice.Set("pid", kPid);
    events.Append(std::move(slice));
  }

  // Instant ("i") marks: task events on their task's track, speed changes
  // and idle starts on the CPU track.
  for (const auto& event : result.trace.events()) {
    JsonValue instant = JsonValue::Object();
    instant.Set("name", EventKindName(event.kind));
    instant.Set("ph", "i");
    instant.Set("ts", ToMicros(event.time_ms));
    instant.Set("pid", kPid);
    instant.Set("tid", event.task_id >= 0 ? TaskTid(event.task_id) : kCpuTid);
    instant.Set("s", "t");  // thread-scoped mark
    if (event.kind == TraceEventKind::kSpeedChange) {
      JsonValue& args = instant.Set("args", JsonValue::Object());
      args.Set("frequency", event.point.frequency);
      args.Set("voltage", event.point.voltage);
    }
    events.Append(std::move(instant));
  }

  doc.Set("displayTimeUnit", "ms");
  JsonValue& other = doc.Set("otherData", JsonValue::Object());
  other.Set("policy", result.policy_name);
  other.Set("horizon_ms", result.horizon_ms);
  other.Set("truncated", result.trace.truncated());
  other.Set("segments", result.trace.segments().size());
  other.Set("exec_energy", result.exec_energy);
  other.Set("idle_energy", result.idle_energy);
  other.Set("idle_level", options.idle_level);
  other.Set("energy_coefficient", options.energy_coefficient);
  other.Set("switch_time_ms", options.switch_time_ms);
  return doc;
}

bool WriteChromeTrace(const SimResult& result, const TaskSet& tasks,
                      const SimOptions& options, const std::string& path) {
  return WriteJsonFile(ExportChromeTrace(result, tasks, options), path);
}

}  // namespace rtdvs
