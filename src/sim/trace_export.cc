#include "src/sim/trace_export.h"

#include <string>

#include "src/cpu/energy_model.h"
#include "src/rt/task.h"
#include "src/sim/metrics.h"
#include "src/sim/mp_simulator.h"
#include "src/sim/simulator.h"
#include "src/util/json.h"
#include "src/util/strings.h"

namespace rtdvs {
namespace {

// Within each process (track group): tid 0 for the CPU (idle/switching)
// track, tid task_id + 1 for each task track. Task id 0 would otherwise
// collide with the CPU tid. Single-core exports use pid 0; the MP export
// uses pid = core index plus one "cluster" group.
constexpr int kCpuTid = 0;

int TaskTid(int task_id) { return task_id + 1; }

double ToMicros(double ms) { return ms * 1000.0; }

JsonValue MetadataEvent(const char* name, int pid, int tid,
                        const std::string& value) {
  JsonValue event = JsonValue::Object();
  event.Set("name", name);
  event.Set("ph", "M");
  event.Set("pid", pid);
  event.Set("tid", tid);
  event.Set("args", JsonValue::Object()).Set("name", value);
  return event;
}

const char* EventKindName(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kRelease:
      return "release";
    case TraceEventKind::kCompletion:
      return "completion";
    case TraceEventKind::kDeadlineMiss:
      return "deadline_miss";
    case TraceEventKind::kSpeedChange:
      return "speed_change";
    case TraceEventKind::kIdleStart:
      return "idle_start";
  }
  return "?";
}

// Track-naming metadata for one process: its name, the CPU track, and one
// track per task.
void AppendTrackMetadata(const std::string& process_name, const TaskSet& tasks,
                         int pid, JsonValue* events) {
  events->Append(MetadataEvent("process_name", pid, kCpuTid, process_name));
  events->Append(MetadataEvent("thread_name", pid, kCpuTid, "cpu (idle/switch)"));
  for (int id = 0; id < tasks.size(); ++id) {
    const Task& task = tasks.task(id);
    events->Append(MetadataEvent(
        "thread_name", pid, TaskTid(id),
        StrFormat("%s (C=%g T=%g)", task.name.c_str(), task.wcet_ms,
                  task.period_ms)));
  }
}

// Frequency/voltage counter track, stepped at every operating-point change.
// Derived from the segments themselves (not the kSpeedChange events) so the
// counter value in effect over any slice re-integrates exactly to the
// energy that slice reports.
void AppendFrequencyCounter(const SimResult& result, int pid,
                            JsonValue* events) {
  const OperatingPoint* last_point = nullptr;
  for (const auto& segment : result.trace.segments()) {
    if (last_point != nullptr && segment.point == *last_point) {
      continue;
    }
    last_point = &segment.point;
    JsonValue counter = JsonValue::Object();
    counter.Set("name", "frequency");
    counter.Set("ph", "C");
    counter.Set("ts", ToMicros(segment.start_ms));
    counter.Set("pid", pid);
    JsonValue& args = counter.Set("args", JsonValue::Object());
    args.Set("frequency", segment.point.frequency);
    args.Set("voltage", segment.point.voltage);
    events->Append(std::move(counter));
  }
}

// Complete ("X") slices: execution on the task tracks, idle/switching on
// the CPU track.
void AppendSegmentSlices(const SimResult& result, const TaskSet& tasks,
                         const SimOptions& options, int pid,
                         JsonValue* events) {
  const EnergyModel energy(options.idle_level, options.energy_coefficient);
  for (const auto& segment : result.trace.segments()) {
    const double wall_ms = segment.end_ms - segment.start_ms;
    JsonValue slice = JsonValue::Object();
    switch (segment.state) {
      case CpuState::kExecuting: {
        slice.Set("name", tasks.task(segment.task_id).name);
        slice.Set("tid", TaskTid(segment.task_id));
        const double work = wall_ms * segment.point.frequency;
        JsonValue& args = slice.Set("args", JsonValue::Object());
        args.Set("frequency", segment.point.frequency);
        args.Set("voltage", segment.point.voltage);
        args.Set("work", work);
        args.Set("energy", energy.ExecutionEnergy(work, segment.point));
        break;
      }
      case CpuState::kIdle: {
        slice.Set("name", "idle");
        slice.Set("tid", kCpuTid);
        JsonValue& args = slice.Set("args", JsonValue::Object());
        args.Set("frequency", segment.point.frequency);
        args.Set("voltage", segment.point.voltage);
        args.Set("energy", energy.IdleEnergy(wall_ms, segment.point));
        break;
      }
      case CpuState::kSwitching: {
        slice.Set("name", "switch");
        slice.Set("tid", kCpuTid);
        JsonValue& args = slice.Set("args", JsonValue::Object());
        args.Set("frequency", segment.point.frequency);
        args.Set("voltage", segment.point.voltage);
        break;
      }
    }
    slice.Set("ph", "X");
    slice.Set("ts", ToMicros(segment.start_ms));
    slice.Set("dur", ToMicros(wall_ms));
    slice.Set("pid", pid);
    events->Append(std::move(slice));
  }
}

// Instant ("i") marks: task events on their task's track, speed changes
// and idle starts on the CPU track.
void AppendInstantEvents(const SimResult& result, int pid, JsonValue* events) {
  for (const auto& event : result.trace.events()) {
    JsonValue instant = JsonValue::Object();
    instant.Set("name", EventKindName(event.kind));
    instant.Set("ph", "i");
    instant.Set("ts", ToMicros(event.time_ms));
    instant.Set("pid", pid);
    instant.Set("tid", event.task_id >= 0 ? TaskTid(event.task_id) : kCpuTid);
    instant.Set("s", "t");  // thread-scoped mark
    if (event.kind == TraceEventKind::kSpeedChange) {
      JsonValue& args = instant.Set("args", JsonValue::Object());
      args.Set("frequency", event.point.frequency);
      args.Set("voltage", event.point.voltage);
    }
    events->Append(std::move(instant));
  }
}

// Everything one simulated core contributes to the document.
void AppendCoreGroup(const SimResult& result, const TaskSet& tasks,
                     const SimOptions& options, int pid,
                     const std::string& process_name, JsonValue* events) {
  AppendTrackMetadata(process_name, tasks, pid, events);
  AppendFrequencyCounter(result, pid, events);
  AppendSegmentSlices(result, tasks, options, pid, events);
  AppendInstantEvents(result, pid, events);
}

}  // namespace

JsonValue ExportChromeTrace(const SimResult& result, const TaskSet& tasks,
                            const SimOptions& options) {
  JsonValue doc = JsonValue::Object();
  JsonValue& events = doc.Set("traceEvents", JsonValue::Array());
  AppendCoreGroup(result, tasks, options, /*pid=*/0,
                  "rtdvs-sim " + result.policy_name, &events);

  doc.Set("displayTimeUnit", "ms");
  JsonValue& other = doc.Set("otherData", JsonValue::Object());
  other.Set("policy", result.policy_name);
  other.Set("horizon_ms", result.horizon_ms);
  other.Set("truncated", result.trace.truncated());
  other.Set("segments", result.trace.segments().size());
  other.Set("exec_energy", result.exec_energy);
  other.Set("idle_energy", result.idle_energy);
  other.Set("idle_level", options.idle_level);
  other.Set("energy_coefficient", options.energy_coefficient);
  other.Set("switch_time_ms", options.switch_time_ms);
  return doc;
}

bool WriteChromeTrace(const SimResult& result, const TaskSet& tasks,
                      const SimOptions& options, const std::string& path) {
  return WriteJsonFile(ExportChromeTrace(result, tasks, options), path);
}

JsonValue ExportChromeTraceMp(const MpSimResult& result, const TaskSet& tasks,
                              const SimOptions& options) {
  JsonValue doc = JsonValue::Object();
  JsonValue& events = doc.Set("traceEvents", JsonValue::Array());

  bool truncated = false;
  size_t segments = 0;
  if (result.admitted) {
    for (int c = 0; c < result.num_cores; ++c) {
      const SimResult& slice = result.cores[static_cast<size_t>(c)];
      // Global cores simulate the full request set; partitioned cores their
      // own local sub-set (powered-down cores an empty one).
      const TaskSet& core_tasks = result.core_tasks[static_cast<size_t>(c)];
      AppendCoreGroup(slice, core_tasks, options, /*pid=*/c,
                      StrFormat("core %d: %s", c, slice.policy_name.c_str()),
                      &events);
      truncated |= slice.trace.truncated();
      segments += slice.trace.segments().size();
    }
    // Global mode keeps job instant events (releases, misses, completions)
    // on the cluster trace — a core-independent view of the task set. The
    // partitioned cluster trace is empty and contributes nothing.
    if (!result.cluster.trace.events().empty()) {
      const int cluster_pid = result.num_cores;
      AppendTrackMetadata(StrFormat("cluster: %s (%s)",
                                    result.cluster.policy_name.c_str(),
                                    MpModeName(result.mode)),
                          tasks, cluster_pid, &events);
      AppendInstantEvents(result.cluster, cluster_pid, &events);
    }
    truncated |= result.cluster.trace.truncated();
  }

  doc.Set("displayTimeUnit", "ms");
  JsonValue& other = doc.Set("otherData", JsonValue::Object());
  other.Set("mode", MpModeName(result.mode));
  other.Set("num_cores", result.num_cores);
  other.Set("admitted", result.admitted);
  other.Set("migrations", result.migrations);
  other.Set("policy", result.cluster.policy_name);
  other.Set("horizon_ms", options.horizon_ms);
  other.Set("truncated", truncated);
  other.Set("segments", segments);
  other.Set("exec_energy", result.cluster.exec_energy);
  other.Set("idle_energy", result.cluster.idle_energy);
  other.Set("idle_level", options.idle_level);
  other.Set("energy_coefficient", options.energy_coefficient);
  other.Set("switch_time_ms", options.switch_time_ms);
  return doc;
}

bool WriteChromeTraceMp(const MpSimResult& result, const TaskSet& tasks,
                        const SimOptions& options, const std::string& path) {
  return WriteJsonFile(ExportChromeTraceMp(result, tasks, options), path);
}

}  // namespace rtdvs
