// Reference simulator: a second, independently written oracle for the
// production engine in src/sim/simulator.cc.
//
// PR 2's SimAudit validates conservation invariants *within* one result, but
// a simulator that is consistently wrong — charging a segment to the right
// bucket at the wrong operating point, say — conserves everything and sails
// through. The defense is differential testing: run the same scenario
// through two engines that share nothing but the behavioral contract and
// demand identical summaries (src/testing/differential.h drives this; the
// fuzz campaign in tools/rtdvs-fuzz generates the scenarios).
//
// Design rules for this file, deliberately opposite to the production
// engine's:
//   - no incremental state: the ready queue, the policy context, and the
//     next-event time are recomputed from scratch at every event;
//   - the scheduler is reimplemented here as an explicit sort of the whole
//     job list (production keeps a single-pass argmin in scheduler.cc);
//   - energy is integrated from first principles (w * V^2, t * f * V^2 *
//     idle_level) instead of going through the EnergyModel class;
//   - clarity over speed everywhere — this simulator is allowed to be an
//     order of magnitude slower.
//
// The contract it implements (matching DESIGN.md and the production
// engine's documented semantics):
//   - periodic tasks release at phase + k * period, deadline = release +
//     period; releases at one event time are processed in task-id order and
//     draw from the execution-time model in that order;
//   - at every event, state changes apply as completions, then deadline
//     misses, then releases; policy callbacks fire after all state changes,
//     completions before releases, then timer wakeups, then one OnIdle per
//     idle period;
//   - an operating-point change halts the processor for switch_time_ms of
//     wall time charged to switching_ms (zero energy), on both the busy and
//     the idle path;
//   - time comparisons use kTimeEpsMs, work comparisons kWorkEps.
//
// Scope: everything the fuzz generators produce — all policies from
// MakePolicy, both miss policies, switch costs, idle levels, WCET overruns.
// Not covered: aperiodic servers and trace recording (the reference CHECKs
// the former off and ignores the latter; traces have their own invariant
// audit in SimAudit).
#ifndef SRC_SIM_REFERENCE_SIM_H_
#define SRC_SIM_REFERENCE_SIM_H_

#include <string>

#include "src/cpu/machine_spec.h"
#include "src/dvs/policy.h"
#include "src/rt/exec_time_model.h"
#include "src/rt/task.h"
#include "src/sim/mp_simulator.h"
#include "src/sim/simulator.h"

namespace rtdvs {

// Fault-injection knobs for harness self-tests: each flag re-introduces a
// historical (fixed) production bug into the reference so tests can verify
// the differential pipeline actually detects and shrinks a divergence
// (tools/rtdvs-fuzz --inject-bug, tests/testing/shrink_test.cc).
struct ReferenceFaults {
  // Pre-PR-2 idle-path accounting bug: a speed-change halt leading into an
  // idle period is charged as idle time and idle energy at the new point
  // instead of switching_ms. Needs switch_time_ms > 0 to manifest.
  bool idle_path_switch_bug = false;
  // Event-ordering bug: deadline misses are processed before completions at
  // the same event time, so a job finishing exactly on its deadline is
  // tallied as a miss. Needs a job whose completion lands on its deadline
  // (e.g. worst-case execution with C == P under EDF).
  bool miss_before_completion_bug = false;
};

// Runs the reference engine over the scenario and returns the summary.
// `policy` and `exec_model` must be fresh instances (both are mutated), and
// options.aperiodic.kind must be kNone. The result's trace is empty and its
// audit is not run (result.audit.audited == false); preemptions are counted
// with the same definition as production but are diagnostic-only.
SimResult RunReferenceSimulation(const TaskSet& tasks, const MachineSpec& machine,
                                 DvsPolicy& policy, ExecTimeModel& exec_model,
                                 const SimOptions& options,
                                 const ReferenceFaults& faults = {});

// Same, resolving the policy from its factory id.
SimResult RunReferenceSimulation(const TaskSet& tasks, const MachineSpec& machine,
                                 const std::string& policy_id,
                                 ExecTimeModel& exec_model, const SimOptions& options,
                                 const ReferenceFaults& faults = {});

// Multiprocessor oracle for RunClusterSimulation, written under the same
// design rules: the partitioned admission tables, the powered-down-core
// slice, the per-core seed mixing, and the whole global-EDF dispatch loop
// are reimplemented here from the contract in mp_simulator.h and
// cluster.h rather than calling into src/engine/cluster.cc. Policies are
// resolved from request.policy_ids (one fresh instance per core). M = 1
// routes to the single-core reference engine, mirroring production's
// routing. The fault knobs apply inside each core's engine so --inject-bug
// self-tests cover multiprocessor campaigns too. The cluster audit is not
// run (cluster_audit.audited == false).
MpSimResult RunReferenceClusterSimulation(const SimRequest& request,
                                          ExecTimeModel& exec_model,
                                          const ReferenceFaults& faults = {});

}  // namespace rtdvs

#endif  // SRC_SIM_REFERENCE_SIM_H_
