// SimAudit: post-run invariant auditor for simulation results.
//
// Every number the repo reports — golden ratios, figure sweeps, the
// transition-latency study — is an integral over trace segments, so a single
// accounting slip (time charged to the wrong bucket, a stale invocation
// view) silently corrupts whole figures while point tests still pass. The
// auditor re-derives each reported total from an independent source and
// flags any disagreement:
//
//   time partition   busy_ms + idle_ms + switching_ms == horizon_ms
//   residency        per-point exec/idle sums == the global totals,
//                    in both milliseconds and energy units
//   trace            segments are contiguous, monotone, non-overlapping,
//                    and re-integrate to the reported times and energies
//                    (skipped — not failed — when the trace is truncated
//                    or was not recorded)
//   job accounting   releases == completions + aborted + in-flight,
//                    globally and per task; per-task stats sum to globals
//   RT guarantee     a deadline-guaranteeing policy on a task set its
//                    schedulability test admits must report zero misses
//                    (skipped when switch_time_ms > 0 or a WCET overrun
//                    was injected — both void the analytical guarantee)
//   lower bound      lower_bound_energy <= exec_energy (§3.2: the bound
//                    is over execution energy with idle assumed free)
//   cluster          multiprocessor results only (AuditMpResult): per-core
//                    wall time sums to num_cores * horizon, cluster
//                    energy/time/work/switch totals equal the slice sums,
//                    job counters sum across cores (partitioned mode), and
//                    migrations stay zero under partitioned scheduling
//
// Violations are collected into a structured AuditReport rather than
// aborting, so a sweep shard can self-check without killing the sweep.
#ifndef SRC_SIM_AUDIT_H_
#define SRC_SIM_AUDIT_H_

#include <string>
#include <vector>

namespace rtdvs {

class MachineSpec;
class TaskSet;
struct MpSimResult;
struct SimOptions;
struct SimResult;

// One invariant class per enumerator; fault-injection tests corrupt a
// result per class and assert the matching check fires.
enum class AuditCheck {
  kTimePartition,
  kResidency,
  kTrace,
  kJobAccounting,
  kRtGuarantee,
  kLowerBound,
  // Cluster-level conservation across an MpSimResult (AuditMpResult).
  kCluster,
};

const char* AuditCheckName(AuditCheck check);

struct AuditViolation {
  AuditCheck check = AuditCheck::kTimePartition;
  std::string message;
};

struct AuditReport {
  // False until AuditSimResult ran (results from audit-off runs).
  bool audited = false;
  int checks_run = 0;
  // Checks that could not apply (no trace, truncated trace, no guarantee).
  int checks_skipped = 0;
  // One human-readable reason per skipped check, e.g. "trace: truncated
  // (capacity limit hit)" — so a silently narrowed audit is visible.
  std::vector<std::string> skip_reasons;
  std::vector<AuditViolation> violations;

  bool ok() const { return violations.empty(); }
  bool Violated(AuditCheck check) const;
  // "audit: OK (6 checks, 1 skipped)" with skip reasons, or one line per
  // violation.
  std::string Summary() const;
};

// Everything the auditor needs beyond the result itself. All pointers must
// outlive the call; `tasks` is the set as simulated (server task included).
struct AuditInputs {
  const TaskSet* tasks = nullptr;
  const MachineSpec* machine = nullptr;
  const SimOptions* options = nullptr;
  // DvsPolicy::guarantees_deadlines() of the policy that produced `result`.
  bool policy_guarantees_deadlines = false;
};

// Runs every applicable check against `result`. Pure function of its
// arguments; never aborts (violations are data, not bugs in the caller).
AuditReport AuditSimResult(const SimResult& result, const AuditInputs& inputs);

// Cluster-level conservation audit over a multiprocessor result (the
// per-core slices of a partitioned run carry their own single-core audits).
// Requires result.admitted; like AuditSimResult it reports, never aborts.
AuditReport AuditMpResult(const MpSimResult& result, const SimOptions& options);

}  // namespace rtdvs

#endif  // SRC_SIM_AUDIT_H_
