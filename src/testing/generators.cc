#include "src/testing/generators.h"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdlib>

#include "src/dvs/policy.h"
#include "src/util/check.h"
#include "src/util/strings.h"

namespace rtdvs {
namespace {

// 1 microsecond grid: release arithmetic stays exact in doubles (see
// src/rt/taskset_generator.h for the same convention).
double SnapMicro(double ms) { return std::round(ms * 1000.0) / 1000.0; }

// Full-precision double: %.17g round-trips any finite double through
// strtod, so repro strings are bit-exact.
std::string Dbl(double value) { return StrFormat("%.17g", value); }

std::optional<double> ParseField(const std::string& text) { return ParseDouble(text); }

}  // namespace

MachineSpec FuzzMachine(const FuzzCase& c) {
  return MachineSpec("fuzz", c.machine_points);
}

TaskSet FuzzTasks(const FuzzCase& c) { return TaskSet(c.tasks); }

std::unique_ptr<ExecTimeModel> MakeFuzzExecModel(const std::string& spec) {
  auto head = spec.substr(0, spec.find(':'));
  if (spec.find(':') == std::string::npos) {
    return nullptr;
  }
  std::string body = spec.substr(spec.find(':') + 1);
  if (head == "c") {
    auto f = ParseField(body);
    if (!f || *f <= 0.0 || *f > 1.0) {
      return nullptr;
    }
    return std::make_unique<ConstantFractionModel>(*f);
  }
  if (head == "u") {
    auto parts = Split(body, ',');
    if (parts.size() != 2) {
      return nullptr;
    }
    auto lo = ParseField(parts[0]);
    auto hi = ParseField(parts[1]);
    if (!lo || !hi || *lo < 0.0 || *hi <= *lo || *hi > 1.0) {
      return nullptr;
    }
    return std::make_unique<UniformFractionModel>(*lo, *hi);
  }
  if (head == "cold") {
    auto parts = Split(body, ',');
    if (parts.size() != 2) {
      return nullptr;
    }
    auto factor = ParseField(parts[0]);
    auto overrun = ParseInt(parts[1]);
    if (!factor || *factor < 1.0 || !overrun || (*overrun != 0 && *overrun != 1)) {
      return nullptr;
    }
    return std::make_unique<ColdStartModel>(
        std::make_unique<UniformFractionModel>(0.0, 1.0), *factor, *overrun == 1);
  }
  if (head == "t") {
    std::vector<std::vector<double>> table;
    for (const auto& row_text : Split(body, '/')) {
      std::vector<double> row;
      for (const auto& entry : Split(row_text, ',')) {
        auto f = ParseField(entry);
        if (!f || *f <= 0.0) {
          return nullptr;
        }
        row.push_back(*f);
      }
      if (row.empty()) {
        return nullptr;
      }
      table.push_back(std::move(row));
    }
    if (table.empty()) {
      return nullptr;
    }
    return std::make_unique<TableFractionModel>(std::move(table));
  }
  return nullptr;
}

SimOptions FuzzSimOptions(const FuzzCase& c) {
  SimOptions options;
  options.horizon_ms = c.horizon_ms;
  options.idle_level = c.idle_level;
  options.switch_time_ms = c.switch_time_ms;
  options.miss_policy = c.miss_policy;
  options.seed = c.seed;
  options.record_trace = false;
  return options;
}

SimRequest FuzzSimRequest(const FuzzCase& c) {
  SimRequest request;
  request.tasks = FuzzTasks(c);
  request.cluster.num_cores = c.num_cores;
  request.cluster.machine = FuzzMachine(c);
  request.mode = c.mp_mode;
  request.partition = c.mp_partition;
  request.policy_ids = {c.policy_id};
  request.options = FuzzSimOptions(c);
  return request;
}

std::string FuzzCaseToRepro(const FuzzCase& c) {
  std::string out = "rtdvs-fuzz-v1;policy=" + c.policy_id + ";machine=";
  for (size_t i = 0; i < c.machine_points.size(); ++i) {
    out += (i ? "," : "") + Dbl(c.machine_points[i].frequency) + "/" +
           Dbl(c.machine_points[i].voltage);
  }
  out += ";tasks=";
  for (size_t i = 0; i < c.tasks.size(); ++i) {
    out += (i ? "," : "") + Dbl(c.tasks[i].period_ms) + ":" + Dbl(c.tasks[i].wcet_ms) +
           ":" + Dbl(c.tasks[i].phase_ms);
  }
  out += ";exec=" + c.exec_spec;
  out += ";horizon=" + Dbl(c.horizon_ms);
  out += ";idle=" + Dbl(c.idle_level);
  out += ";switch=" + Dbl(c.switch_time_ms);
  out += std::string(";miss=") +
         (c.miss_policy == MissPolicy::kAbortJob ? "abort" : "late");
  out += ";seed=" + StrFormat("%llu", static_cast<unsigned long long>(c.seed));
  // Multiprocessor fields only when they matter: single-core repro strings
  // stay byte-identical to pre-cluster ones.
  if (c.num_cores > 1) {
    out += ";cores=" + StrFormat("%d", c.num_cores);
    out += std::string(";mode=") + MpModeName(c.mp_mode);
    out += std::string(";fit=") + PartitionHeuristicName(c.mp_partition);
  }
  return out;
}

std::optional<FuzzCase> ParseRepro(const std::string& repro, std::string* error) {
  auto fail = [error](const std::string& message) -> std::optional<FuzzCase> {
    if (error != nullptr) {
      *error = message;
    }
    return std::nullopt;
  };
  auto fields = Split(repro, ';');
  if (fields.empty() || Trim(fields[0]) != "rtdvs-fuzz-v1") {
    return fail("missing rtdvs-fuzz-v1 header");
  }
  FuzzCase c;
  c.machine_points.clear();
  bool saw_tasks = false;
  for (size_t i = 1; i < fields.size(); ++i) {
    const std::string field = std::string(Trim(fields[i]));
    if (field.empty()) {
      continue;
    }
    auto eq = field.find('=');
    if (eq == std::string::npos) {
      return fail("field without '=': " + field);
    }
    const std::string key = field.substr(0, eq);
    const std::string value = field.substr(eq + 1);
    if (key == "policy") {
      if (!IsValidPolicyId(value)) {
        return fail("unknown policy id: " + value);
      }
      c.policy_id = value;
    } else if (key == "machine") {
      for (const auto& entry : Split(value, ',')) {
        auto parts = Split(entry, '/');
        if (parts.size() != 2) {
          return fail("bad machine point (want f/v): " + entry);
        }
        auto frequency = ParseField(parts[0]);
        auto voltage = ParseField(parts[1]);
        if (!frequency || !voltage) {
          return fail("bad machine point numbers: " + entry);
        }
        c.machine_points.push_back({*frequency, *voltage});
      }
      if (c.machine_points.empty()) {
        return fail("empty machine table");
      }
    } else if (key == "tasks") {
      saw_tasks = true;
      for (const auto& entry : Split(value, ',')) {
        auto parts = Split(entry, ':');
        if (parts.size() != 2 && parts.size() != 3) {
          return fail("bad task (want P:C[:phase]): " + entry);
        }
        auto period = ParseField(parts[0]);
        auto wcet = ParseField(parts[1]);
        std::optional<double> phase = 0.0;
        if (parts.size() == 3) {
          phase = ParseField(parts[2]);
        }
        if (!period || !wcet || !phase) {
          return fail("bad task numbers: " + entry);
        }
        c.tasks.push_back({"", *period, *wcet, *phase});
      }
    } else if (key == "exec") {
      if (MakeFuzzExecModel(value) == nullptr) {
        return fail("bad exec spec: " + value);
      }
      c.exec_spec = value;
    } else if (key == "horizon") {
      auto v = ParseField(value);
      if (!v || *v <= 0.0) {
        return fail("bad horizon: " + value);
      }
      c.horizon_ms = *v;
    } else if (key == "idle") {
      auto v = ParseField(value);
      if (!v || *v < 0.0) {
        return fail("bad idle level: " + value);
      }
      c.idle_level = *v;
    } else if (key == "switch") {
      auto v = ParseField(value);
      if (!v || *v < 0.0) {
        return fail("bad switch time: " + value);
      }
      c.switch_time_ms = *v;
    } else if (key == "miss") {
      if (value == "late") {
        c.miss_policy = MissPolicy::kContinueLate;
      } else if (value == "abort") {
        c.miss_policy = MissPolicy::kAbortJob;
      } else {
        return fail("bad miss policy (want late|abort): " + value);
      }
    } else if (key == "seed") {
      // Full uint64 range (ParseInt is int64-only and generated seeds use
      // all 64 bits).
      if (value.empty() || value.find_first_not_of("0123456789") != std::string::npos) {
        return fail("bad seed: " + value);
      }
      errno = 0;
      char* end = nullptr;
      unsigned long long parsed_seed = std::strtoull(value.c_str(), &end, 10);
      if (errno != 0 || end != value.c_str() + value.size()) {
        return fail("bad seed: " + value);
      }
      c.seed = static_cast<uint64_t>(parsed_seed);
    } else if (key == "cores") {
      auto v = ParseInt(value);
      if (!v || *v < 1 || *v > 64) {
        return fail("bad cores (want 1..64): " + value);
      }
      c.num_cores = static_cast<int>(*v);
    } else if (key == "mode") {
      auto mode = ParseMpMode(value);
      if (!mode) {
        return fail("bad mode (want partitioned|global): " + value);
      }
      c.mp_mode = *mode;
    } else if (key == "fit") {
      auto fit = ParsePartitionHeuristic(value);
      if (!fit) {
        return fail("bad fit (want ff|nf|bf|wf): " + value);
      }
      c.mp_partition = *fit;
    } else {
      return fail("unknown field: " + key);
    }
  }
  if (!saw_tasks || c.tasks.empty()) {
    return fail("no tasks");
  }
  for (const Task& task : c.tasks) {
    if (task.period_ms <= 0 || task.wcet_ms <= 0 || task.wcet_ms > task.period_ms ||
        task.phase_ms < 0) {
      return fail("invalid task parameters (need 0 < C <= P, phase >= 0)");
    }
  }
  return c;
}

bool FuzzCaseEquals(const FuzzCase& a, const FuzzCase& b) {
  if (a.policy_id != b.policy_id || a.exec_spec != b.exec_spec ||
      a.horizon_ms != b.horizon_ms || a.idle_level != b.idle_level ||
      a.switch_time_ms != b.switch_time_ms || a.miss_policy != b.miss_policy ||
      a.seed != b.seed || a.num_cores != b.num_cores ||
      a.machine_points.size() != b.machine_points.size() ||
      a.tasks.size() != b.tasks.size()) {
    return false;
  }
  // Mode and heuristic are inert at one core; compare them only when they
  // can change behavior (mirroring what the repro string records).
  if (a.num_cores > 1 &&
      (a.mp_mode != b.mp_mode || a.mp_partition != b.mp_partition)) {
    return false;
  }
  for (size_t i = 0; i < a.machine_points.size(); ++i) {
    if (!(a.machine_points[i] == b.machine_points[i])) {
      return false;
    }
  }
  for (size_t i = 0; i < a.tasks.size(); ++i) {
    if (a.tasks[i].period_ms != b.tasks[i].period_ms ||
        a.tasks[i].wcet_ms != b.tasks[i].wcet_ms ||
        a.tasks[i].phase_ms != b.tasks[i].phase_ms) {
      return false;
    }
  }
  return true;
}

std::vector<OperatingPoint> GenerateMachinePoints(Pcg32& rng, int max_points) {
  RTDVS_CHECK_GE(max_points, 1);
  int num_points = 1 + static_cast<int>(rng.NextBounded(static_cast<uint32_t>(max_points)));
  // Frequencies on a 0.01 grid in [0.05, 0.99], distinct, plus the
  // mandatory 1.0 maximum.
  std::vector<int> centi;
  while (static_cast<int>(centi.size()) < num_points - 1) {
    int f = 5 + static_cast<int>(rng.NextBounded(95));  // 5..99
    bool duplicate = false;
    for (int existing : centi) {
      duplicate = duplicate || existing == f;
    }
    if (!duplicate) {
      centi.push_back(f);
    }
  }
  centi.push_back(100);
  std::sort(centi.begin(), centi.end());
  std::vector<OperatingPoint> points;
  double voltage = std::round(rng.UniformDouble(0.8, 1.6) * 1000.0) / 1000.0;
  for (int f : centi) {
    points.push_back({static_cast<double>(f) / 100.0, voltage});
    voltage += std::round(rng.UniformDouble(0.0, 0.8) * 1000.0) / 1000.0;
  }
  return points;
}

std::vector<Task> GenerateFuzzTasks(Pcg32& rng, int num_tasks,
                                    double target_utilization, bool harmonic,
                                    bool allow_phases) {
  RTDVS_CHECK_GE(num_tasks, 1);
  RTDVS_CHECK_GT(target_utilization, 0.0);
  // UUniFast (Bini & Buttazzo): an unbiased split of the target utilization.
  std::vector<double> utilization(static_cast<size_t>(num_tasks));
  double remaining = target_utilization;
  for (int i = 0; i < num_tasks - 1; ++i) {
    double next = remaining *
                  std::pow(rng.NextDouble(), 1.0 / static_cast<double>(num_tasks - 1 - i));
    utilization[static_cast<size_t>(i)] = remaining - next;
    remaining = next;
  }
  utilization[static_cast<size_t>(num_tasks - 1)] = remaining;

  // Periods: harmonic sets use base * 2^k (so hyperperiods stay short and
  // RM/EDF behave identically on them); non-harmonic draws uniformly from
  // [2, 50] ms on the microsecond grid.
  static const double kHarmonicBases[] = {2.0, 2.5, 4.0, 5.0};
  double base = kHarmonicBases[rng.NextBounded(4)];
  std::vector<Task> tasks;
  for (int i = 0; i < num_tasks; ++i) {
    double period = harmonic
                        ? base * static_cast<double>(1 << rng.NextBounded(4))
                        : SnapMicro(rng.UniformDouble(2.0, 50.0));
    double wcet = SnapMicro(utilization[static_cast<size_t>(i)] * period);
    wcet = std::min(std::max(wcet, 0.001), period);
    double phase = 0.0;
    if (allow_phases && rng.NextDouble() < 0.25) {
      phase = SnapMicro(rng.UniformDouble(0.0, period));
    }
    tasks.push_back({StrFormat("F%d", i + 1), period, wcet, phase});
  }
  return tasks;
}

FuzzCase GenerateFuzzCase(Pcg32& rng, const FuzzGenOptions& options) {
  RTDVS_CHECK_GE(options.min_tasks, 1);
  RTDVS_CHECK_GE(options.max_tasks, options.min_tasks);
  FuzzCase c;
  const std::vector<std::string>& pool =
      options.policy_pool.empty() ? AllPaperPolicyIds() : options.policy_pool;
  c.policy_id = pool[rng.NextBounded(static_cast<uint32_t>(pool.size()))];
  c.machine_points = GenerateMachinePoints(rng, options.max_machine_points);

  int num_tasks = options.min_tasks +
                  static_cast<int>(rng.NextBounded(static_cast<uint32_t>(
                      options.max_tasks - options.min_tasks + 1)));
  double target = rng.UniformDouble(options.min_target_utilization,
                                    options.max_target_utilization);
  bool harmonic = rng.NextDouble() < 0.4;
  c.tasks = GenerateFuzzTasks(rng, num_tasks, target, harmonic, options.allow_phases);

  // Demand model: mostly constants and uniforms; occasionally a cold-start
  // overrun (the §4.3 regime where guarantees are void).
  switch (rng.NextBounded(6)) {
    case 0:
      c.exec_spec = "c:1";
      break;
    case 1:
      c.exec_spec = "c:" + StrFormat("%.17g", rng.UniformDouble(0.1, 1.0));
      break;
    case 2:
      c.exec_spec = "u:0,1";
      break;
    case 3:
      c.exec_spec = "u:0.2,0.8";
      break;
    case 4:
      c.exec_spec = "c:0.5";
      break;
    default:
      c.exec_spec = options.allow_overrun ? "cold:1.5,1" : "cold:1.5,0";
      break;
  }

  double max_period = 0;
  for (const Task& task : c.tasks) {
    max_period = std::max(max_period, task.period_ms + task.phase_ms);
  }
  c.horizon_ms = SnapMicro(std::max(
      rng.UniformDouble(options.min_horizon_ms, options.max_horizon_ms),
      2.2 * max_period));

  static const double kIdleLevels[] = {0.0, 0.0, 0.1, 0.5};
  c.idle_level = kIdleLevels[rng.NextBounded(4)];
  if (options.allow_switch_cost) {
    static const double kSwitchCosts[] = {0.0, 0.0, 0.1, 0.5};
    c.switch_time_ms = kSwitchCosts[rng.NextBounded(4)];
  }
  c.miss_policy = (options.allow_abort_miss && rng.NextDouble() < 0.25)
                      ? MissPolicy::kAbortJob
                      : MissPolicy::kContinueLate;
  c.seed = (static_cast<uint64_t>(rng.NextU32()) << 32) | rng.NextU32();

  // Multiprocessor draws come LAST, and only when the caller opted into a
  // non-trivial core pool: with the default {1} the rng stream is
  // byte-identical to the pre-cluster generator, so historical repro seeds
  // keep reproducing the same cases.
  const bool mp_enabled =
      !(options.core_choices.size() == 1 && options.core_choices[0] == 1);
  if (mp_enabled) {
    RTDVS_CHECK(!options.core_choices.empty());
    c.num_cores = options.core_choices[rng.NextBounded(
        static_cast<uint32_t>(options.core_choices.size()))];
    RTDVS_CHECK_GE(c.num_cores, 1);
    if (c.num_cores > 1) {
      c.mp_mode = rng.NextDouble() < 0.5 ? MpMode::kPartitioned : MpMode::kGlobal;
      static const PartitionHeuristic kHeuristics[] = {
          PartitionHeuristic::kFirstFit, PartitionHeuristic::kNextFit,
          PartitionHeuristic::kBestFit, PartitionHeuristic::kWorstFit};
      c.mp_partition = kHeuristics[rng.NextBounded(4)];
      // Rescale the workload to the cluster: M cores want roughly M times
      // the tasks and utilization (0.9 keeps most partitioned draws
      // feasible while still generating some admission rejections).
      const int scaled_tasks = std::min(num_tasks * c.num_cores, 24);
      const double scaled_target = target * static_cast<double>(c.num_cores) * 0.9;
      c.tasks = GenerateFuzzTasks(rng, scaled_tasks, scaled_target, harmonic,
                                  options.allow_phases);
      double mp_max_period = 0;
      for (const Task& task : c.tasks) {
        mp_max_period = std::max(mp_max_period, task.period_ms + task.phase_ms);
      }
      c.horizon_ms = SnapMicro(std::max(c.horizon_ms, 2.2 * mp_max_period));
    }
  }

  // Hyperperiod bias (appended last; see FuzzGenOptions): rewrite the case
  // into one the hyperperiod memo can actually arm on. Everything the
  // exact-arithmetic gate checks is regenerated dyadic; fields it ignores
  // (idle level, miss policy, cores) keep their draws above.
  if (options.hyperperiod_bias > 0.0 &&
      rng.NextDouble() < options.hyperperiod_bias) {
    // Machine: 1-3 power-of-two frequencies below the mandatory 1.0.
    const int num_low = 1 + static_cast<int>(rng.NextBounded(3));
    c.machine_points.clear();
    double voltage = std::round(rng.UniformDouble(0.8, 1.6) * 1000.0) / 1000.0;
    for (int i = num_low; i >= 0; --i) {
      c.machine_points.push_back({std::ldexp(1.0, -i), voltage});
      voltage += std::round(rng.UniformDouble(0.1, 0.8) * 1000.0) / 1000.0;
    }
    // Tasks: harmonic power-of-two periods, WCETs on the 2^-6 ms grid,
    // zero phases (the gate rejects any phase).
    const int num_dyadic = 2 + static_cast<int>(rng.NextBounded(3));
    c.tasks.clear();
    double hyperperiod = 0.0;
    for (int i = 0; i < num_dyadic; ++i) {
      const double period = std::ldexp(1.0, static_cast<int>(rng.NextBounded(4)));
      const double wcet =
          period * static_cast<double>(1 + rng.NextBounded(24)) / 64.0;
      c.tasks.push_back({StrFormat("H%d", i + 1), period, wcet, 0.0});
      hyperperiod = std::max(hyperperiod, period);
    }
    // Constant dyadic fraction: fraction * wcet stays on the dyadic grid.
    static const char* kDyadicFractions[] = {"c:1", "c:0.5", "c:0.25",
                                             "c:0.75"};
    c.exec_spec = kDyadicFractions[rng.NextBounded(4)];
    // Switch time must be dyadic too; 0.5 exercises transition stalls
    // inside replayed windows.
    c.switch_time_ms = rng.NextBounded(3) == 0 ? 0.5 : 0.0;
    // Long horizon: 16..64 whole hyperperiods past warmup + verification.
    c.horizon_ms =
        hyperperiod * static_cast<double>(16 + rng.NextBounded(49));
  }
  return c;
}

}  // namespace rtdvs
