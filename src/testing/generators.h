// Seeded scenario generators for the differential-testing subsystem.
//
// A FuzzCase is a complete, self-contained description of one simulation
// scenario: task set, machine table, execution-demand model, simulator
// options, and the policy under test. Cases serialize to a one-line repro
// string (FuzzCaseToRepro) that round-trips exactly — including every
// double, printed with %.17g — so any divergence found by a fuzz campaign
// can be replayed with `tools/rtdvs-fuzz --repro=<string>` and checked in
// verbatim as a regression test.
//
// The generators deliberately cover the regimes where the paper's policies
// diverge most (cf. Leung & Tsui's dynamic-workload-variation analysis):
// harmonic and non-harmonic period sets, utilization targets up to mild
// overload, degenerate single-point machines, constant/uniform/overrun
// demand, switch costs, and both deadline-miss policies.
#ifndef SRC_TESTING_GENERATORS_H_
#define SRC_TESTING_GENERATORS_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/cpu/machine_spec.h"
#include "src/cpu/operating_point.h"
#include "src/engine/cluster.h"
#include "src/rt/exec_time_model.h"
#include "src/rt/task.h"
#include "src/sim/mp_simulator.h"
#include "src/sim/simulator.h"
#include "src/util/random.h"

namespace rtdvs {

// One complete differential-testing scenario. Plain data; helpers below
// turn the fields into the domain objects the simulators consume.
struct FuzzCase {
  std::string policy_id = "cc_edf";
  // Sorted by frequency; the last point must have frequency exactly 1.0.
  std::vector<OperatingPoint> machine_points = {{0.5, 3.0}, {0.75, 4.0}, {1.0, 5.0}};
  std::vector<Task> tasks;
  // Execution-demand spec (MakeFuzzExecModel grammar):
  //   c:<f>                constant fraction of WCET
  //   u:<lo>,<hi>          uniform in (lo, hi]
  //   cold:<factor>,<0|1>  ColdStartModel over uniform(0,1]; 1 = allow the
  //                        first invocation to overrun its WCET
  //   t:<f,f,..>/<f,..>/.. per-task, per-invocation table (TableFractionModel)
  std::string exec_spec = "c:1";
  double horizon_ms = 100.0;
  double idle_level = 0.0;
  double switch_time_ms = 0.0;
  MissPolicy miss_policy = MissPolicy::kContinueLate;
  uint64_t seed = 1;
  // Multiprocessor extension: num_cores == 1 is the classic single-core
  // scenario (the mode/heuristic fields are then inert, and the repro string
  // omits them so pre-cluster strings stay valid and byte-identical).
  int num_cores = 1;
  MpMode mp_mode = MpMode::kPartitioned;
  PartitionHeuristic mp_partition = PartitionHeuristic::kFirstFit;
};

// --- Domain-object builders ---
MachineSpec FuzzMachine(const FuzzCase& c);  // aborts on an invalid table
TaskSet FuzzTasks(const FuzzCase& c);
// nullptr on a malformed spec (grammar above).
std::unique_ptr<ExecTimeModel> MakeFuzzExecModel(const std::string& spec);
// SimOptions for the case (audit on, trace off, no aperiodic server).
SimOptions FuzzSimOptions(const FuzzCase& c);
// The full cluster request (machine, cores, mode, heuristic, one policy id
// applied to every core, options). For num_cores == 1 this is exactly the
// M=1 request whose result is bit-identical to the legacy RunSimulation.
SimRequest FuzzSimRequest(const FuzzCase& c);

// --- Repro strings ---
// "rtdvs-fuzz-v1;policy=...;machine=f/v,f/v;tasks=P:C:ph,..;exec=..;
//  horizon=..;idle=..;switch=..;miss=late|abort;seed=.."
// Multiprocessor cases append ";cores=M;mode=partitioned|global;fit=ff|nf|
// bf|wf"; single-core cases omit all three fields.
std::string FuzzCaseToRepro(const FuzzCase& c);
// nullopt (with *error set, if non-null) on malformed input.
std::optional<FuzzCase> ParseRepro(const std::string& repro, std::string* error = nullptr);
// Field-exact equality (doubles compared bitwise), for round-trip tests.
bool FuzzCaseEquals(const FuzzCase& a, const FuzzCase& b);

// --- Generation ---
struct FuzzGenOptions {
  // Policies to draw from; empty means the paper's six (AllPaperPolicyIds).
  std::vector<std::string> policy_pool;
  int min_tasks = 1;
  int max_tasks = 8;
  double min_horizon_ms = 50.0;
  double max_horizon_ms = 400.0;
  // Machines get 1..max_machine_points operating points; 1 yields the
  // degenerate single-point grid {1.0}.
  int max_machine_points = 10;
  double min_target_utilization = 0.15;
  // > 1 admits mildly overloaded sets, exercising miss/backlog paths.
  double max_target_utilization = 1.1;
  bool allow_switch_cost = true;
  bool allow_overrun = true;
  bool allow_abort_miss = true;
  bool allow_phases = true;
  // Cluster sizes to draw from. The default {1} keeps generation
  // byte-identical to the pre-cluster generator (no extra rng draws at
  // all); any other pool draws the multiprocessor parameters AFTER every
  // single-core field so the shared prefix of the rng stream is preserved.
  // A draw of 1 leaves the case single-core; a draw of M > 1 also rescales
  // the task set (count and target utilization) to the cluster.
  std::vector<int> core_choices = {1};
  // Probability of rewriting a drawn case into a long-horizon harmonic
  // scenario that passes the hyperperiod fast path's exact-arithmetic gate
  // (power-of-two periods and machine frequencies, dyadic WCETs and
  // constant fractions, zero phases, horizon of 16-64 hyperperiods) — so
  // fuzz campaigns actually exercise hyperperiod record/verify/replay
  // instead of always failing the dyadic gate. 0 (the default) draws
  // nothing extra, keeping the rng stream byte-identical to older
  // generators; a positive bias appends its draws after every existing
  // field for the same reason.
  double hyperperiod_bias = 0.0;
};

// Draws one scenario. Deterministic in the rng state: the same seeded rng
// produces the same case, independent of any other draws in the process.
FuzzCase GenerateFuzzCase(Pcg32& rng, const FuzzGenOptions& options = {});

// Building blocks, exposed for targeted tests:
// 1..max_points points, frequencies strictly increasing with max exactly
// 1.0, voltages positive and non-decreasing.
std::vector<OperatingPoint> GenerateMachinePoints(Pcg32& rng, int max_points = 10);
// `num_tasks` tasks whose worst-case utilizations sum to target_utilization
// (UUniFast split; within snapping tolerance of the 1 microsecond grid).
// Harmonic sets use power-of-two multiples of a common base period.
std::vector<Task> GenerateFuzzTasks(Pcg32& rng, int num_tasks,
                                    double target_utilization, bool harmonic,
                                    bool allow_phases);

}  // namespace rtdvs

#endif  // SRC_TESTING_GENERATORS_H_
