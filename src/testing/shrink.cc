#include "src/testing/shrink.h"

#include <cmath>
#include <vector>

#include "src/util/check.h"

namespace rtdvs {
namespace {

// A move proposes zero or more simpler candidates; the driver accepts the
// first one that still fails and restarts the pass from the new best.
using Move = std::function<std::vector<FuzzCase>(const FuzzCase&)>;

std::vector<FuzzCase> DropTasks(const FuzzCase& c) {
  std::vector<FuzzCase> out;
  if (c.tasks.size() <= 1) {
    return out;
  }
  for (size_t i = 0; i < c.tasks.size(); ++i) {
    FuzzCase candidate = c;
    candidate.tasks.erase(candidate.tasks.begin() + static_cast<long>(i));
    out.push_back(std::move(candidate));
  }
  return out;
}

std::vector<FuzzCase> DropMachinePoints(const FuzzCase& c) {
  std::vector<FuzzCase> out;
  if (c.machine_points.size() <= 1) {
    return out;
  }
  // The maximum-frequency point (last, frequency 1.0) is mandatory for a
  // valid MachineSpec, so only interior points are droppable.
  for (size_t i = 0; i + 1 < c.machine_points.size(); ++i) {
    FuzzCase candidate = c;
    candidate.machine_points.erase(candidate.machine_points.begin() +
                                   static_cast<long>(i));
    out.push_back(std::move(candidate));
  }
  return out;
}

std::vector<FuzzCase> SimplifyKnobs(const FuzzCase& c) {
  std::vector<FuzzCase> out;
  if (c.switch_time_ms != 0.0) {
    FuzzCase candidate = c;
    candidate.switch_time_ms = 0.0;
    out.push_back(std::move(candidate));
  }
  if (c.idle_level != 0.0) {
    FuzzCase candidate = c;
    candidate.idle_level = 0.0;
    out.push_back(std::move(candidate));
  }
  if (c.miss_policy != MissPolicy::kContinueLate) {
    FuzzCase candidate = c;
    candidate.miss_policy = MissPolicy::kContinueLate;
    out.push_back(std::move(candidate));
  }
  bool any_phase = false;
  for (const Task& task : c.tasks) {
    any_phase = any_phase || task.phase_ms != 0.0;
  }
  if (any_phase) {
    FuzzCase candidate = c;
    for (Task& task : candidate.tasks) {
      task.phase_ms = 0.0;
    }
    out.push_back(std::move(candidate));
  }
  if (c.seed != 1) {
    FuzzCase candidate = c;
    candidate.seed = 1;
    out.push_back(std::move(candidate));
  }
  return out;
}

std::vector<FuzzCase> SimplifyCluster(const FuzzCase& c) {
  std::vector<FuzzCase> out;
  if (c.num_cores > 1) {
    // Fewer cores first (2 is the smallest cluster that is still a
    // cluster), then all the way down to the single-core engine.
    for (int cores : {c.num_cores / 2, 2, 1}) {
      if (cores >= 1 && cores < c.num_cores) {
        FuzzCase candidate = c;
        candidate.num_cores = cores;
        out.push_back(std::move(candidate));
      }
    }
    if (c.mp_mode != MpMode::kPartitioned) {
      FuzzCase candidate = c;
      candidate.mp_mode = MpMode::kPartitioned;
      out.push_back(std::move(candidate));
    }
    if (c.mp_partition != PartitionHeuristic::kFirstFit) {
      FuzzCase candidate = c;
      candidate.mp_partition = PartitionHeuristic::kFirstFit;
      out.push_back(std::move(candidate));
    }
  }
  return out;
}

std::vector<FuzzCase> SimplifyExecSpec(const FuzzCase& c) {
  std::vector<FuzzCase> out;
  for (const char* spec : {"c:1", "c:0.5"}) {
    if (c.exec_spec != spec) {
      FuzzCase candidate = c;
      candidate.exec_spec = spec;
      out.push_back(std::move(candidate));
    }
  }
  return out;
}

std::vector<FuzzCase> ShrinkHorizon(const FuzzCase& c) {
  std::vector<FuzzCase> out;
  double max_period = 1.0;
  for (const Task& task : c.tasks) {
    max_period = std::max(max_period, task.period_ms + task.phase_ms);
  }
  // Halve toward the shortest horizon that still covers one full period of
  // every task; below that most scenarios degenerate to "nothing happened".
  double floor = std::ceil(1.1 * max_period);
  for (double candidate_horizon : {c.horizon_ms / 2.0, floor}) {
    candidate_horizon = std::max(std::round(candidate_horizon), floor);
    if (candidate_horizon < c.horizon_ms) {
      FuzzCase candidate = c;
      candidate.horizon_ms = candidate_horizon;
      out.push_back(std::move(candidate));
    }
  }
  return out;
}

std::vector<FuzzCase> RoundTaskNumbers(const FuzzCase& c) {
  std::vector<FuzzCase> out;
  for (size_t i = 0; i < c.tasks.size(); ++i) {
    const Task& task = c.tasks[i];
    // Integer milliseconds, then one decimal. Keep 0 < wcet <= period.
    for (double scale : {1.0, 10.0}) {
      double period = std::round(task.period_ms * scale) / scale;
      double wcet = std::round(task.wcet_ms * scale) / scale;
      period = std::max(period, 1.0 / scale);
      wcet = std::min(std::max(wcet, 1.0 / scale), period);
      if (period != task.period_ms || wcet != task.wcet_ms) {
        FuzzCase candidate = c;
        candidate.tasks[i].period_ms = period;
        candidate.tasks[i].wcet_ms = wcet;
        out.push_back(std::move(candidate));
      }
    }
  }
  return out;
}

std::vector<FuzzCase> RoundMachineNumbers(const FuzzCase& c) {
  std::vector<FuzzCase> out;
  FuzzCase candidate = c;
  bool changed = false;
  for (OperatingPoint& point : candidate.machine_points) {
    double voltage = std::round(point.voltage * 10.0) / 10.0;
    if (voltage <= 0.0) {
      voltage = 0.1;
    }
    changed = changed || voltage != point.voltage;
    point.voltage = voltage;
  }
  // Rounding must preserve non-decreasing voltages or MachineSpec aborts.
  for (size_t i = 1; i < candidate.machine_points.size(); ++i) {
    if (candidate.machine_points[i].voltage < candidate.machine_points[i - 1].voltage) {
      changed = false;
    }
  }
  if (changed) {
    out.push_back(std::move(candidate));
  }
  return out;
}

}  // namespace

FuzzCase ShrinkFuzzCase(const FuzzCase& failing, const ShrinkPredicate& still_fails,
                        const ShrinkOptions& options, ShrinkStats* stats) {
  ShrinkStats local_stats;
  ShrinkStats& s = stats != nullptr ? *stats : local_stats;
  s = ShrinkStats{};
  if (options.max_predicate_calls <= 0) {
    return failing;
  }
  RTDVS_CHECK(still_fails(failing)) << "shrink input does not fail its predicate";
  s.predicate_calls = 1;

  static const Move kMoves[] = {
      SimplifyCluster,  DropTasks,         DropMachinePoints,
      SimplifyKnobs,    SimplifyExecSpec,  ShrinkHorizon,
      RoundTaskNumbers, RoundMachineNumbers,
  };

  FuzzCase best = failing;
  bool progressed = true;
  while (progressed && s.predicate_calls < options.max_predicate_calls) {
    progressed = false;
    for (const Move& move : kMoves) {
      for (FuzzCase& candidate : move(best)) {
        if (s.predicate_calls >= options.max_predicate_calls) {
          return best;
        }
        ++s.predicate_calls;
        if (still_fails(candidate)) {
          best = std::move(candidate);
          ++s.accepted_moves;
          progressed = true;
          break;  // regenerate candidates from the simpler case next pass
        }
      }
    }
  }
  return best;
}

}  // namespace rtdvs
