// Differential comparison of the production simulator (src/sim/simulator.cc)
// against the reference oracle (src/sim/reference_sim.cc), plus the
// metamorphic properties the fuzz campaign checks alongside it.
//
// Comparison contract:
//   - event counters (releases, completions, misses, aborts, unfinished,
//     overruns, speed switches) must agree exactly;
//   - energies, times and work must agree within 1e-9 absolute plus a tiny
//     relative term (both engines use the same expression grouping, so the
//     slack only absorbs accumulated rounding over long horizons);
//   - per-point residency and per-task stats are compared the same way;
//   - `preemptions` is excluded: it is a diagnostic heuristic, not part of
//     the behavioral contract (see metrics.h).
//
// Metamorphic properties are theorems about the production engine alone;
// each is gated on the preconditions under which it actually is a theorem
// (documented per property in differential.cc) so the fuzzer never reports
// a "violation" of a statement that was false to begin with.
#ifndef SRC_TESTING_DIFFERENTIAL_H_
#define SRC_TESTING_DIFFERENTIAL_H_

#include <string>
#include <vector>

#include "src/sim/reference_sim.h"
#include "src/testing/generators.h"

namespace rtdvs {

// One field that disagreed between the two engines.
struct FieldDiff {
  std::string field;  // e.g. "exec_energy", "task[2].deadline_misses"
  double production = 0;
  double reference = 0;
};

// Fills `diffs` (if non-null) with every disagreeing field; returns true
// when the results agree on the full contract above.
bool ResultsAgree(const SimResult& production, const SimResult& reference,
                  std::vector<FieldDiff>* diffs = nullptr);

// One violated metamorphic property.
struct PropertyViolation {
  std::string property;  // short id, e.g. "energy-lower-bound"
  std::string detail;    // human-readable numbers
};

// Runs whichever of the four properties the case's preconditions admit:
//   energy-lower-bound      exec energy >= the §3.2 bound
//   nodvs-vs-static         E(edf) >= E(static_edf) on guaranteed sets
//   task-reorder            totals invariant under reversing the task order
//   grid-refinement         refining the frequency grid never costs energy
std::vector<PropertyViolation> CheckMetamorphicProperties(const FuzzCase& c);

// Outcome of one full fuzz trial (differential run + optional properties).
struct TrialOutcome {
  bool ok = true;
  std::vector<FieldDiff> diffs;
  std::vector<PropertyViolation> violations;
  // Multi-line human-readable description of everything that failed.
  std::string Describe() const;
};

// Runs the case through both engines (injecting `faults` into the reference)
// and compares; when `check_properties` is set, also runs the metamorphic
// properties against the production engine. Cases with num_cores > 1 run
// through the cluster engines (MpResultsAgree contract); the metamorphic
// properties are single-core theorems and are skipped for them.
TrialOutcome RunFuzzTrial(const FuzzCase& c, bool check_properties = true,
                          const ReferenceFaults& faults = {});

// The differential half only, returning both results for inspection.
// Requires num_cores == 1; multiprocessor cases use RunMpDifferentialCase.
struct DifferentialRun {
  SimResult production;
  SimResult reference;
  bool agreed = false;
  std::vector<FieldDiff> diffs;
};
DifferentialRun RunDifferentialCase(const FuzzCase& c,
                                    const ReferenceFaults& faults = {});

// Cluster-level agreement: admission verdict, partition assignment,
// migrations and cores_used exactly; the cluster totals and every per-core
// slice under the single-core ResultsAgree contract (fields prefixed
// "cluster." / "core[c]."). Both results must describe the same request.
bool MpResultsAgree(const MpSimResult& production, const MpSimResult& reference,
                    std::vector<FieldDiff>* diffs = nullptr);

// Multiprocessor differential run: production RunClusterSimulation vs the
// reference cluster oracle on the case's SimRequest (any num_cores >= 1).
struct MpDifferentialRun {
  MpSimResult production;
  MpSimResult reference;
  bool agreed = false;
  std::vector<FieldDiff> diffs;
};
MpDifferentialRun RunMpDifferentialCase(const FuzzCase& c,
                                        const ReferenceFaults& faults = {});

}  // namespace rtdvs

#endif  // SRC_TESTING_DIFFERENTIAL_H_
