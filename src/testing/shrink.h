// Greedy shrinking of failing FuzzCases.
//
// When a fuzz trial fails (divergence between the production and reference
// simulators, or a metamorphic-property violation), the raw generated case is
// usually noisy: eight tasks, a ten-point machine, phases, switch costs. The
// shrinker repeatedly applies simplifying moves — drop a task, drop an
// operating point, zero a knob, round a number — keeping a move only if the
// case STILL fails, until no move makes progress. The result is the minimal
// (locally, under this move set) reproduction, which is what gets printed as
// a repro string and checked in as a regression test.
//
// The predicate is the single source of truth for "still fails"; the
// shrinker never interprets results itself, so the same machinery minimizes
// differential divergences and property violations alike.
#ifndef SRC_TESTING_SHRINK_H_
#define SRC_TESTING_SHRINK_H_

#include <functional>

#include "src/testing/generators.h"

namespace rtdvs {

// Returns true when the candidate case still exhibits the failure being
// minimized. Must be deterministic (the shrinker may re-evaluate equivalent
// candidates) and must tolerate any structurally valid FuzzCase.
using ShrinkPredicate = std::function<bool(const FuzzCase&)>;

struct ShrinkOptions {
  // Hard cap on predicate evaluations; greedy passes stop early when a full
  // pass accepts no move. 0 disables shrinking (the input is returned).
  int max_predicate_calls = 2000;
};

struct ShrinkStats {
  int predicate_calls = 0;
  int accepted_moves = 0;
};

// Greedily minimizes `failing`, which must itself satisfy the predicate
// (CHECKed). The returned case always satisfies the predicate.
FuzzCase ShrinkFuzzCase(const FuzzCase& failing, const ShrinkPredicate& still_fails,
                        const ShrinkOptions& options = {},
                        ShrinkStats* stats = nullptr);

}  // namespace rtdvs

#endif  // SRC_TESTING_SHRINK_H_
