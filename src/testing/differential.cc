#include "src/testing/differential.h"

#include <algorithm>
#include <cmath>

#include "src/sim/mp_simulator.h"
#include "src/sim/simulator.h"
#include "src/util/check.h"
#include "src/util/strings.h"

namespace rtdvs {
namespace {

// Absolute 1e-9 (the contract's agreement bound) plus a relative term that
// absorbs last-bit rounding drift on large accumulated sums.
bool NearEq(double a, double b, double abs_tol = 1e-9, double rel_tol = 1e-12) {
  return std::abs(a - b) <= abs_tol + rel_tol * std::max(std::abs(a), std::abs(b));
}

void Check(std::vector<FieldDiff>* diffs, bool* agreed, const std::string& field,
           double production, double reference, bool ok) {
  if (ok) {
    return;
  }
  *agreed = false;
  if (diffs != nullptr) {
    diffs->push_back({field, production, reference});
  }
}

void CheckExact(std::vector<FieldDiff>* diffs, bool* agreed, const std::string& field,
                int64_t production, int64_t reference) {
  Check(diffs, agreed, field, static_cast<double>(production),
        static_cast<double>(reference), production == reference);
}

void CheckNear(std::vector<FieldDiff>* diffs, bool* agreed, const std::string& field,
               double production, double reference) {
  Check(diffs, agreed, field, production, reference, NearEq(production, reference));
}

SimResult RunProduction(const FuzzCase& c, const std::string& policy_id) {
  TaskSet tasks = FuzzTasks(c);
  MachineSpec machine = FuzzMachine(c);
  SimOptions options = FuzzSimOptions(c);
  auto model = MakeFuzzExecModel(c.exec_spec);
  RTDVS_CHECK(model != nullptr) << "bad exec spec: " << c.exec_spec;
  return RunSimulation(tasks, machine, policy_id, *model, options);
}

// Constant-speed policies: the operating point never changes after OnStart,
// so aggregate time/energy totals are order- and grid-theorems for them.
bool IsConstantSpeedPolicy(const std::string& policy_id) {
  return policy_id == "edf" || policy_id == "rm" || policy_id == "static_edf" ||
         policy_id == "static_rm";
}

}  // namespace

bool ResultsAgree(const SimResult& production, const SimResult& reference,
                  std::vector<FieldDiff>* diffs) {
  bool agreed = true;
  CheckExact(diffs, &agreed, "releases", production.releases, reference.releases);
  CheckExact(diffs, &agreed, "completions", production.completions,
             reference.completions);
  CheckExact(diffs, &agreed, "deadline_misses", production.deadline_misses,
             reference.deadline_misses);
  CheckExact(diffs, &agreed, "aborted", production.aborted, reference.aborted);
  CheckExact(diffs, &agreed, "unfinished_at_horizon", production.unfinished_at_horizon,
             reference.unfinished_at_horizon);
  CheckExact(diffs, &agreed, "wcet_overruns", production.wcet_overruns,
             reference.wcet_overruns);
  CheckExact(diffs, &agreed, "speed_switches", production.speed_switches,
             reference.speed_switches);

  CheckNear(diffs, &agreed, "exec_energy", production.exec_energy,
            reference.exec_energy);
  CheckNear(diffs, &agreed, "idle_energy", production.idle_energy,
            reference.idle_energy);
  CheckNear(diffs, &agreed, "busy_ms", production.busy_ms, reference.busy_ms);
  CheckNear(diffs, &agreed, "idle_ms", production.idle_ms, reference.idle_ms);
  CheckNear(diffs, &agreed, "switching_ms", production.switching_ms,
            reference.switching_ms);
  CheckNear(diffs, &agreed, "total_work_executed", production.total_work_executed,
            reference.total_work_executed);
  CheckNear(diffs, &agreed, "lower_bound_energy", production.lower_bound_energy,
            reference.lower_bound_energy);

  CheckExact(diffs, &agreed, "residency.size",
             static_cast<int64_t>(production.residency.size()),
             static_cast<int64_t>(reference.residency.size()));
  if (production.residency.size() == reference.residency.size()) {
    for (size_t i = 0; i < production.residency.size(); ++i) {
      const PointResidency& p = production.residency[i];
      const PointResidency& r = reference.residency[i];
      const std::string prefix = StrFormat("residency[%zu].", i);
      Check(diffs, &agreed, prefix + "point", p.point.frequency, r.point.frequency,
            p.point == r.point);
      CheckNear(diffs, &agreed, prefix + "exec_ms", p.exec_ms, r.exec_ms);
      CheckNear(diffs, &agreed, prefix + "idle_ms", p.idle_ms, r.idle_ms);
      CheckNear(diffs, &agreed, prefix + "exec_energy", p.exec_energy, r.exec_energy);
      CheckNear(diffs, &agreed, prefix + "idle_energy", p.idle_energy, r.idle_energy);
    }
  }

  CheckExact(diffs, &agreed, "task_stats.size",
             static_cast<int64_t>(production.task_stats.size()),
             static_cast<int64_t>(reference.task_stats.size()));
  if (production.task_stats.size() == reference.task_stats.size()) {
    for (size_t i = 0; i < production.task_stats.size(); ++i) {
      const TaskStats& p = production.task_stats[i];
      const TaskStats& r = reference.task_stats[i];
      const std::string prefix = StrFormat("task[%zu].", i);
      CheckExact(diffs, &agreed, prefix + "releases", p.releases, r.releases);
      CheckExact(diffs, &agreed, prefix + "completions", p.completions, r.completions);
      CheckExact(diffs, &agreed, prefix + "deadline_misses", p.deadline_misses,
                 r.deadline_misses);
      CheckExact(diffs, &agreed, prefix + "aborted", p.aborted, r.aborted);
      CheckExact(diffs, &agreed, prefix + "unfinished", p.unfinished, r.unfinished);
      CheckNear(diffs, &agreed, prefix + "executed_work", p.executed_work,
                r.executed_work);
      CheckNear(diffs, &agreed, prefix + "max_response_ms", p.max_response_ms,
                r.max_response_ms);
      CheckNear(diffs, &agreed, prefix + "total_response_ms", p.total_response_ms,
                r.total_response_ms);
    }
  }
  return agreed;
}

std::vector<PropertyViolation> CheckMetamorphicProperties(const FuzzCase& c) {
  std::vector<PropertyViolation> violations;
  const SimResult base = RunProduction(c, c.policy_id);

  // Property: exec energy >= the §3.2 theoretical bound for the actually
  // executed workload. Holds unconditionally — the bound is computed for
  // this run's own workload and horizon.
  if (base.exec_energy + 1e-9 < base.lower_bound_energy) {
    violations.push_back(
        {"energy-lower-bound",
         StrFormat("exec_energy %.12g < lower_bound %.12g", base.exec_energy,
                         base.lower_bound_energy)});
  }

  // Property: unscaled EDF costs at least as much as statically scaled EDF.
  // Theorem only when neither run misses or aborts (on overloaded sets the
  // slower static run can execute less work) and switching is free (static
  // pays one transition that noDVS does not).
  if (c.switch_time_ms == 0.0) {
    const SimResult no_dvs = c.policy_id == "edf" ? base : RunProduction(c, "edf");
    const SimResult scaled =
        c.policy_id == "static_edf" ? base : RunProduction(c, "static_edf");
    const bool guaranteed = no_dvs.deadline_misses == 0 && no_dvs.aborted == 0 &&
                            scaled.deadline_misses == 0 && scaled.aborted == 0 &&
                            no_dvs.unfinished_at_horizon == scaled.unfinished_at_horizon;
    if (guaranteed &&
        no_dvs.total_energy() + 1e-9 < scaled.total_energy() - 1e-9) {
      violations.push_back(
          {"nodvs-vs-static",
           StrFormat("E(edf) %.12g < E(static_edf) %.12g",
                           no_dvs.total_energy(), scaled.total_energy())});
    }
  }

  // Property: aggregate totals are invariant under reversing the task order.
  // Theorem for constant-speed policies (one operating point for the whole
  // run => work-conserving totals do not depend on intra-deadline ordering)
  // with a deterministic demand model (random models draw per release in
  // task-id order, so permuting ids permutes the drawn workloads) and
  // continue-late misses (aborting discards a DIFFERENT tardy job's
  // remaining work depending on tie order).
  if (c.tasks.size() >= 2 && IsConstantSpeedPolicy(c.policy_id) &&
      StartsWith(c.exec_spec, "c:") && c.miss_policy == MissPolicy::kContinueLate) {
    FuzzCase reversed = c;
    std::reverse(reversed.tasks.begin(), reversed.tasks.end());
    const SimResult swapped = RunProduction(reversed, c.policy_id);
    struct Total {
      const char* name;
      double base_value;
      double swapped_value;
    };
    const Total totals[] = {
        {"exec_energy", base.exec_energy, swapped.exec_energy},
        {"idle_energy", base.idle_energy, swapped.idle_energy},
        {"busy_ms", base.busy_ms, swapped.busy_ms},
        {"idle_ms", base.idle_ms, swapped.idle_ms},
        {"total_work_executed", base.total_work_executed,
         swapped.total_work_executed},
    };
    for (const Total& t : totals) {
      if (!NearEq(t.base_value, t.swapped_value, 1e-6, 1e-9)) {
        violations.push_back(
            {"task-reorder",
             std::string(t.name) + ": " +
                 StrFormat("original %.12g vs reversed %.12g", t.base_value,
                                 t.swapped_value)});
      }
    }
  }

  // Property: refining the frequency grid (inserting midpoints — a strict
  // superset of operating points) never increases total energy. Theorem for
  // constant-speed policies with free switching and continue-late misses:
  // the old operating point is still available, and every point the refined
  // run can pick instead is no faster than necessary and no higher-voltage.
  // NOT a theorem for the feedback policies (cc_*/la_*): greedy per-event
  // choices on a finer grid can land in costlier trajectories.
  if (c.machine_points.size() >= 2 && IsConstantSpeedPolicy(c.policy_id) &&
      c.switch_time_ms == 0.0 && c.miss_policy == MissPolicy::kContinueLate) {
    FuzzCase refined = c;
    refined.machine_points.clear();
    for (size_t i = 0; i < c.machine_points.size(); ++i) {
      if (i > 0) {
        const OperatingPoint& lo = c.machine_points[i - 1];
        const OperatingPoint& hi = c.machine_points[i];
        refined.machine_points.push_back(
            {(lo.frequency + hi.frequency) / 2.0, (lo.voltage + hi.voltage) / 2.0});
      }
      refined.machine_points.push_back(c.machine_points[i]);
    }
    const SimResult fine = RunProduction(refined, c.policy_id);
    if (fine.total_energy() > base.total_energy() + 1e-6) {
      violations.push_back(
          {"grid-refinement",
           StrFormat("refined grid %.12g > original %.12g",
                           fine.total_energy(), base.total_energy())});
    }
  }

  return violations;
}

std::string TrialOutcome::Describe() const {
  if (ok) {
    return "ok";
  }
  std::string out;
  for (const FieldDiff& d : diffs) {
    out += StrFormat("  diff %s: production=%.17g reference=%.17g\n", d.field.c_str(),
                     d.production, d.reference);
  }
  for (const PropertyViolation& v : violations) {
    out += "  property " + v.property + ": " + v.detail + "\n";
  }
  return out;
}

bool MpResultsAgree(const MpSimResult& production, const MpSimResult& reference,
                    std::vector<FieldDiff>* diffs) {
  bool agreed = true;
  CheckExact(diffs, &agreed, "num_cores", production.num_cores, reference.num_cores);
  CheckExact(diffs, &agreed, "admitted", production.admitted ? 1 : 0,
             reference.admitted ? 1 : 0);
  CheckExact(diffs, &agreed, "migrations", production.migrations,
             reference.migrations);
  CheckExact(diffs, &agreed, "partition.feasible", production.partition.feasible ? 1 : 0,
             reference.partition.feasible ? 1 : 0);
  CheckExact(diffs, &agreed, "partition.cores_used", production.partition.cores_used,
             reference.partition.cores_used);
  CheckExact(diffs, &agreed, "partition.core_of_task.size",
             static_cast<int64_t>(production.partition.core_of_task.size()),
             static_cast<int64_t>(reference.partition.core_of_task.size()));
  if (production.partition.core_of_task.size() ==
      reference.partition.core_of_task.size()) {
    for (size_t i = 0; i < production.partition.core_of_task.size(); ++i) {
      CheckExact(diffs, &agreed, StrFormat("partition.core_of_task[%zu]", i),
                 production.partition.core_of_task[i],
                 reference.partition.core_of_task[i]);
    }
  }
  // Infeasible runs carry no slices; the partition verdict above is the
  // whole comparison.
  if (!production.admitted || !reference.admitted) {
    return agreed;
  }

  auto compare_slice = [&](const std::string& prefix, const SimResult& p,
                           const SimResult& r) {
    std::vector<FieldDiff> slice_diffs;
    if (!ResultsAgree(p, r, diffs != nullptr ? &slice_diffs : nullptr)) {
      agreed = false;
    }
    if (diffs != nullptr) {
      for (FieldDiff& d : slice_diffs) {
        d.field = prefix + d.field;
        diffs->push_back(std::move(d));
      }
    }
  };
  compare_slice("cluster.", production.cluster, reference.cluster);
  CheckExact(diffs, &agreed, "cores.size",
             static_cast<int64_t>(production.cores.size()),
             static_cast<int64_t>(reference.cores.size()));
  if (production.cores.size() == reference.cores.size()) {
    for (size_t core = 0; core < production.cores.size(); ++core) {
      compare_slice(StrFormat("core[%zu].", core), production.cores[core],
                    reference.cores[core]);
    }
  }
  return agreed;
}

MpDifferentialRun RunMpDifferentialCase(const FuzzCase& c,
                                        const ReferenceFaults& faults) {
  MpDifferentialRun run;
  SimRequest request = FuzzSimRequest(c);
  auto production_model = MakeFuzzExecModel(c.exec_spec);
  auto reference_model = MakeFuzzExecModel(c.exec_spec);
  RTDVS_CHECK(production_model != nullptr) << "bad exec spec: " << c.exec_spec;
  run.production = RunClusterSimulation(request, *production_model);
  run.reference = RunReferenceClusterSimulation(request, *reference_model, faults);
  run.agreed = MpResultsAgree(run.production, run.reference, &run.diffs);
  return run;
}

DifferentialRun RunDifferentialCase(const FuzzCase& c, const ReferenceFaults& faults) {
  RTDVS_CHECK(c.num_cores == 1) << "RunDifferentialCase is single-core; use "
                                   "RunMpDifferentialCase for clusters";
  DifferentialRun run;
  TaskSet tasks = FuzzTasks(c);
  MachineSpec machine = FuzzMachine(c);
  SimOptions options = FuzzSimOptions(c);
  auto production_model = MakeFuzzExecModel(c.exec_spec);
  auto reference_model = MakeFuzzExecModel(c.exec_spec);
  RTDVS_CHECK(production_model != nullptr) << "bad exec spec: " << c.exec_spec;
  run.production = RunSimulation(tasks, machine, c.policy_id, *production_model, options);
  run.reference = RunReferenceSimulation(tasks, machine, c.policy_id, *reference_model,
                                         options, faults);
  run.agreed = ResultsAgree(run.production, run.reference, &run.diffs);
  return run;
}

TrialOutcome RunFuzzTrial(const FuzzCase& c, bool check_properties,
                          const ReferenceFaults& faults) {
  TrialOutcome outcome;
  bool agreed = false;
  if (c.num_cores > 1) {
    MpDifferentialRun run = RunMpDifferentialCase(c, faults);
    outcome.diffs = std::move(run.diffs);
    agreed = run.agreed;
    // The metamorphic properties are single-core theorems; none of them
    // holds (or is even well-defined) for cluster schedules, so MP trials
    // are differential-only.
  } else {
    DifferentialRun run = RunDifferentialCase(c, faults);
    outcome.diffs = std::move(run.diffs);
    agreed = run.agreed;
    if (check_properties) {
      outcome.violations = CheckMetamorphicProperties(c);
    }
  }
  outcome.ok = agreed && outcome.violations.empty();
  return outcome;
}

}  // namespace rtdvs
