// Preemptive priority schedulers: Earliest-Deadline-First (dynamic priority)
// and Rate-Monotonic (static priority by period), the two schedulers the
// paper integrates DVS with (§2.2).
#ifndef SRC_RT_SCHEDULER_H_
#define SRC_RT_SCHEDULER_H_

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "src/rt/job.h"
#include "src/rt/task.h"

namespace rtdvs {

enum class SchedulerKind {
  kEdf,
  kRm,
};

std::string SchedulerKindName(SchedulerKind kind);

class Scheduler {
 public:
  virtual ~Scheduler() = default;
  virtual SchedulerKind kind() const = 0;

  // The priority order itself: true when `a` strictly outranks `b`. Exposed
  // so ready-queue structures (src/engine/ready_queue.h) can be keyed by
  // the active scheduler without reimplementing its tie-breaking.
  virtual bool HigherPriority(const Job& a, const Job& b,
                              const TaskSet& tasks) const = 0;

  // Returns the index (into `jobs`) of the job to run, or kNone when no job
  // is runnable. Jobs flagged finished or suspended are skipped; ties
  // resolve to the lowest index among equal-priority jobs.
  virtual size_t PickJob(const std::vector<Job>& jobs, const TaskSet& tasks) const;

  static constexpr size_t kNone = static_cast<size_t>(-1);
};

// Highest priority = earliest absolute deadline; ties by task id, then by
// release time (FIFO within a task). Overrides PickJob so the per-element
// comparison inlines (the selection runs once per simulation step).
class EdfScheduler : public Scheduler {
 public:
  SchedulerKind kind() const override { return SchedulerKind::kEdf; }
  bool HigherPriority(const Job& a, const Job& b,
                      const TaskSet& tasks) const override;
  size_t PickJob(const std::vector<Job>& jobs, const TaskSet& tasks) const override;
};

// Highest priority = shortest period; ties by task id, FIFO within a task.
class RmScheduler : public Scheduler {
 public:
  SchedulerKind kind() const override { return SchedulerKind::kRm; }
  bool HigherPriority(const Job& a, const Job& b,
                      const TaskSet& tasks) const override;
  size_t PickJob(const std::vector<Job>& jobs, const TaskSet& tasks) const override;
};

std::unique_ptr<Scheduler> MakeScheduler(SchedulerKind kind);

}  // namespace rtdvs

#endif  // SRC_RT_SCHEDULER_H_
