// Preemptive priority schedulers: Earliest-Deadline-First (dynamic priority)
// and Rate-Monotonic (static priority by period), the two schedulers the
// paper integrates DVS with (§2.2).
#ifndef SRC_RT_SCHEDULER_H_
#define SRC_RT_SCHEDULER_H_

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "src/rt/job.h"
#include "src/rt/task.h"

namespace rtdvs {

enum class SchedulerKind {
  kEdf,
  kRm,
};

std::string SchedulerKindName(SchedulerKind kind);

// The priority comparisons and the shared selection loop, inline so hosts
// that know the scheduler kind statically (the simulator's event loop is
// templated on it) select with zero virtual dispatch per step. The virtual
// Scheduler interface below routes through the same functions, so the two
// paths cannot drift.
inline bool EdfHigherPriority(const Job& a, const Job& b) {
  if (a.deadline_ms != b.deadline_ms) {
    return a.deadline_ms < b.deadline_ms;
  }
  if (a.task_id != b.task_id) {
    return a.task_id < b.task_id;
  }
  return a.release_ms < b.release_ms;
}

// RM compares task periods; `periods` is a dense task-id-indexed array (the
// hosts' SoA period cache) so the comparison never gathers from the Task
// struct on the hot path.
inline bool RmHigherPriority(const Job& a, const Job& b, const double* periods) {
  double pa = periods[a.task_id];
  double pb = periods[b.task_id];
  if (pa != pb) {
    return pa < pb;
  }
  if (a.task_id != b.task_id) {
    return a.task_id < b.task_id;
  }
  return a.release_ms < b.release_ms;
}

struct EdfComparator {
  bool operator()(const Job& a, const Job& b) const {
    return EdfHigherPriority(a, b);
  }
};

struct RmComparator {
  const double* periods;  // dense, indexed by task id
  bool operator()(const Job& a, const Job& b) const {
    return RmHigherPriority(a, b, periods);
  }
};

// Selection loop shared by every pick path: highest-priority unfinished,
// unsuspended job; ties resolve to the lowest index.
template <typename HigherPri>
inline size_t PickJobWith(const std::vector<Job>& jobs, HigherPri&& higher) {
  constexpr size_t kNone = static_cast<size_t>(-1);
  size_t best = kNone;
  for (size_t i = 0; i < jobs.size(); ++i) {
    if (jobs[i].finished || jobs[i].suspended) {
      continue;
    }
    if (best == kNone || higher(jobs[i], jobs[best])) {
      best = i;
    }
  }
  return best;
}

class Scheduler {
 public:
  virtual ~Scheduler() = default;
  virtual SchedulerKind kind() const = 0;

  // The priority order itself: true when `a` strictly outranks `b`. Exposed
  // so ready-queue structures (src/engine/ready_queue.h) can be keyed by
  // the active scheduler without reimplementing its tie-breaking.
  virtual bool HigherPriority(const Job& a, const Job& b,
                              const TaskSet& tasks) const = 0;

  // Returns the index (into `jobs`) of the job to run, or kNone when no job
  // is runnable. Jobs flagged finished or suspended are skipped; ties
  // resolve to the lowest index among equal-priority jobs.
  virtual size_t PickJob(const std::vector<Job>& jobs, const TaskSet& tasks) const;

  static constexpr size_t kNone = static_cast<size_t>(-1);
};

// Highest priority = earliest absolute deadline; ties by task id, then by
// release time (FIFO within a task). Overrides PickJob so the per-element
// comparison inlines (the selection runs once per simulation step).
class EdfScheduler : public Scheduler {
 public:
  SchedulerKind kind() const override { return SchedulerKind::kEdf; }
  bool HigherPriority(const Job& a, const Job& b,
                      const TaskSet& tasks) const override;
  size_t PickJob(const std::vector<Job>& jobs, const TaskSet& tasks) const override;
};

// Highest priority = shortest period; ties by task id, FIFO within a task.
class RmScheduler : public Scheduler {
 public:
  SchedulerKind kind() const override { return SchedulerKind::kRm; }
  bool HigherPriority(const Job& a, const Job& b,
                      const TaskSet& tasks) const override;
  size_t PickJob(const std::vector<Job>& jobs, const TaskSet& tasks) const override;
};

std::unique_ptr<Scheduler> MakeScheduler(SchedulerKind kind);

}  // namespace rtdvs

#endif  // SRC_RT_SCHEDULER_H_
