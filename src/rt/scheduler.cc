#include "src/rt/scheduler.h"

#include "src/util/check.h"

namespace rtdvs {

std::string SchedulerKindName(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kEdf:
      return "EDF";
    case SchedulerKind::kRm:
      return "RM";
  }
  return "?";
}

namespace {

// TaskSet-indirected form of RmHigherPriority for the virtual path, which
// has no dense period cache to hand over.
inline bool PeriodHigherPriority(const Job& a, const Job& b,
                                 const TaskSet& tasks) {
  double pa = tasks.task(a.task_id).period_ms;
  double pb = tasks.task(b.task_id).period_ms;
  if (pa != pb) {
    return pa < pb;
  }
  if (a.task_id != b.task_id) {
    return a.task_id < b.task_id;
  }
  return a.release_ms < b.release_ms;
}

}  // namespace

// Fallback selection loop over the virtual HigherPriority (a strictly
// outranks b) for scheduler subclasses that do not override PickJob.
size_t Scheduler::PickJob(const std::vector<Job>& jobs, const TaskSet& tasks) const {
  size_t best = kNone;
  for (size_t i = 0; i < jobs.size(); ++i) {
    if (jobs[i].finished || jobs[i].suspended) {
      continue;
    }
    if (best == kNone || HigherPriority(jobs[i], jobs[best], tasks)) {
      best = i;
    }
  }
  return best;
}

bool EdfScheduler::HigherPriority(const Job& a, const Job& b,
                                  const TaskSet& tasks) const {
  (void)tasks;
  return EdfHigherPriority(a, b);
}

size_t EdfScheduler::PickJob(const std::vector<Job>& jobs,
                             const TaskSet& tasks) const {
  (void)tasks;
  return PickJobWith(jobs, EdfComparator{});
}

bool RmScheduler::HigherPriority(const Job& a, const Job& b,
                                 const TaskSet& tasks) const {
  return PeriodHigherPriority(a, b, tasks);
}

size_t RmScheduler::PickJob(const std::vector<Job>& jobs,
                            const TaskSet& tasks) const {
  return PickJobWith(jobs, [&tasks](const Job& a, const Job& b) {
    return PeriodHigherPriority(a, b, tasks);
  });
}

std::unique_ptr<Scheduler> MakeScheduler(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kEdf:
      return std::make_unique<EdfScheduler>();
    case SchedulerKind::kRm:
      return std::make_unique<RmScheduler>();
  }
  RTDVS_CHECK(false) << "unknown scheduler kind";
  return nullptr;
}

}  // namespace rtdvs
