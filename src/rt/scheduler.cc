#include "src/rt/scheduler.h"

#include "src/util/check.h"

namespace rtdvs {

std::string SchedulerKindName(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kEdf:
      return "EDF";
    case SchedulerKind::kRm:
      return "RM";
  }
  return "?";
}

namespace {

// The shared selection loop, parameterized so each scheduler's PickJob
// override inlines its own comparison (a virtual call per element would
// dominate the per-step cost for these tiny job vectors).
template <typename HigherPri>
size_t PickWith(const std::vector<Job>& jobs, HigherPri&& higher) {
  size_t best = Scheduler::kNone;
  for (size_t i = 0; i < jobs.size(); ++i) {
    if (jobs[i].finished || jobs[i].suspended) {
      continue;
    }
    if (best == Scheduler::kNone || higher(jobs[i], jobs[best])) {
      best = i;
    }
  }
  return best;
}

inline bool EdfHigher(const Job& a, const Job& b) {
  if (a.deadline_ms != b.deadline_ms) {
    return a.deadline_ms < b.deadline_ms;
  }
  if (a.task_id != b.task_id) {
    return a.task_id < b.task_id;
  }
  return a.release_ms < b.release_ms;
}

inline bool RmHigher(const Job& a, const Job& b, const TaskSet& tasks) {
  double pa = tasks.task(a.task_id).period_ms;
  double pb = tasks.task(b.task_id).period_ms;
  if (pa != pb) {
    return pa < pb;
  }
  if (a.task_id != b.task_id) {
    return a.task_id < b.task_id;
  }
  return a.release_ms < b.release_ms;
}

}  // namespace

// Fallback selection loop over the virtual HigherPriority (a strictly
// outranks b) for scheduler subclasses that do not override PickJob.
size_t Scheduler::PickJob(const std::vector<Job>& jobs, const TaskSet& tasks) const {
  size_t best = kNone;
  for (size_t i = 0; i < jobs.size(); ++i) {
    if (jobs[i].finished || jobs[i].suspended) {
      continue;
    }
    if (best == kNone || HigherPriority(jobs[i], jobs[best], tasks)) {
      best = i;
    }
  }
  return best;
}

bool EdfScheduler::HigherPriority(const Job& a, const Job& b,
                                  const TaskSet& tasks) const {
  (void)tasks;
  return EdfHigher(a, b);
}

size_t EdfScheduler::PickJob(const std::vector<Job>& jobs,
                             const TaskSet& tasks) const {
  (void)tasks;
  return PickWith(jobs, EdfHigher);
}

bool RmScheduler::HigherPriority(const Job& a, const Job& b,
                                 const TaskSet& tasks) const {
  return RmHigher(a, b, tasks);
}

size_t RmScheduler::PickJob(const std::vector<Job>& jobs,
                            const TaskSet& tasks) const {
  return PickWith(jobs, [&tasks](const Job& a, const Job& b) {
    return RmHigher(a, b, tasks);
  });
}

std::unique_ptr<Scheduler> MakeScheduler(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kEdf:
      return std::make_unique<EdfScheduler>();
    case SchedulerKind::kRm:
      return std::make_unique<RmScheduler>();
  }
  RTDVS_CHECK(false) << "unknown scheduler kind";
  return nullptr;
}

}  // namespace rtdvs
