#include "src/rt/scheduler.h"

#include "src/util/check.h"

namespace rtdvs {

std::string SchedulerKindName(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kEdf:
      return "EDF";
    case SchedulerKind::kRm:
      return "RM";
  }
  return "?";
}

namespace {

// Shared selection loop: `higher(a, b)` returns true when a strictly
// outranks b.
template <typename HigherFn>
size_t PickBy(const std::vector<Job>& jobs, HigherFn higher) {
  size_t best = Scheduler::kNone;
  for (size_t i = 0; i < jobs.size(); ++i) {
    if (jobs[i].finished || jobs[i].suspended) {
      continue;
    }
    if (best == Scheduler::kNone || higher(jobs[i], jobs[best])) {
      best = i;
    }
  }
  return best;
}

}  // namespace

size_t EdfScheduler::PickJob(const std::vector<Job>& jobs, const TaskSet& tasks) const {
  (void)tasks;
  return PickBy(jobs, [](const Job& a, const Job& b) {
    if (a.deadline_ms != b.deadline_ms) {
      return a.deadline_ms < b.deadline_ms;
    }
    if (a.task_id != b.task_id) {
      return a.task_id < b.task_id;
    }
    return a.release_ms < b.release_ms;
  });
}

size_t RmScheduler::PickJob(const std::vector<Job>& jobs, const TaskSet& tasks) const {
  return PickBy(jobs, [&tasks](const Job& a, const Job& b) {
    double pa = tasks.task(a.task_id).period_ms;
    double pb = tasks.task(b.task_id).period_ms;
    if (pa != pb) {
      return pa < pb;
    }
    if (a.task_id != b.task_id) {
      return a.task_id < b.task_id;
    }
    return a.release_ms < b.release_ms;
  });
}

std::unique_ptr<Scheduler> MakeScheduler(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kEdf:
      return std::make_unique<EdfScheduler>();
    case SchedulerKind::kRm:
      return std::make_unique<RmScheduler>();
  }
  RTDVS_CHECK(false) << "unknown scheduler kind";
  return nullptr;
}

}  // namespace rtdvs
