#include "src/rt/exec_time_model.h"

#include <algorithm>

#include "src/util/check.h"
#include "src/util/strings.h"

namespace rtdvs {

ConstantFractionModel::ConstantFractionModel(double fraction) : fraction_(fraction) {
  RTDVS_CHECK_GT(fraction_, 0.0);
  RTDVS_CHECK_LE(fraction_, 1.0);
}

std::string ConstantFractionModel::name() const {
  return StrFormat("const(%.3g)", fraction_);
}

double ConstantFractionModel::DrawFraction(int task_id, int64_t invocation, Pcg32& rng) {
  (void)task_id;
  (void)invocation;
  (void)rng;
  return fraction_;
}

UniformFractionModel::UniformFractionModel(double lo, double hi) : lo_(lo), hi_(hi) {
  RTDVS_CHECK_GE(lo_, 0.0);
  RTDVS_CHECK_GT(hi_, lo_);
  RTDVS_CHECK_LE(hi_, 1.0);
}

std::string UniformFractionModel::name() const {
  return StrFormat("uniform(%.3g,%.3g)", lo_, hi_);
}

double UniformFractionModel::DrawFraction(int task_id, int64_t invocation, Pcg32& rng) {
  (void)task_id;
  (void)invocation;
  // Draw in (lo, hi]: 1 - r maps [0,1) onto (0,1].
  return lo_ + (hi_ - lo_) * (1.0 - rng.NextDouble());
}

BimodalFractionModel::BimodalFractionModel(double typical_fraction,
                                           double spike_probability)
    : typical_fraction_(typical_fraction), spike_probability_(spike_probability) {
  RTDVS_CHECK_GT(typical_fraction_, 0.0);
  RTDVS_CHECK_LE(typical_fraction_, 1.0);
  RTDVS_CHECK_GE(spike_probability_, 0.0);
  RTDVS_CHECK_LE(spike_probability_, 1.0);
}

std::string BimodalFractionModel::name() const {
  return StrFormat("bimodal(%.3g,p=%.3g)", typical_fraction_, spike_probability_);
}

double BimodalFractionModel::DrawFraction(int task_id, int64_t invocation, Pcg32& rng) {
  (void)task_id;
  (void)invocation;
  if (rng.NextDouble() < spike_probability_) {
    return 0.85 + 0.15 * (1.0 - rng.NextDouble());
  }
  return typical_fraction_ * (1.0 - rng.NextDouble());
}

ColdStartModel::ColdStartModel(std::unique_ptr<ExecTimeModel> inner, double cold_factor,
                               bool allow_overrun)
    : inner_(std::move(inner)), cold_factor_(cold_factor), allow_overrun_(allow_overrun) {
  RTDVS_CHECK(inner_ != nullptr);
  RTDVS_CHECK_GE(cold_factor_, 1.0);
}

std::string ColdStartModel::name() const {
  return StrFormat("cold(%.3g,%s)", cold_factor_, inner_->name().c_str());
}

double ColdStartModel::DrawFraction(int task_id, int64_t invocation, Pcg32& rng) {
  double fraction = inner_->DrawFraction(task_id, invocation, rng);
  if (invocation == 0) {
    fraction *= cold_factor_;
    if (!allow_overrun_) {
      fraction = std::min(fraction, 1.0);
    }
  }
  return fraction;
}

PerTaskModel::PerTaskModel(std::vector<std::unique_ptr<ExecTimeModel>> models)
    : models_(std::move(models)), fallback_(std::make_unique<ConstantFractionModel>(1.0)) {
  for (const auto& model : models_) {
    RTDVS_CHECK(model != nullptr);
  }
}

std::string PerTaskModel::name() const {
  std::string out = "per-task(";
  for (size_t i = 0; i < models_.size(); ++i) {
    if (i > 0) {
      out += ",";
    }
    out += models_[i]->name();
  }
  return out + ")";
}

void PerTaskModel::set_fallback(std::unique_ptr<ExecTimeModel> fallback) {
  RTDVS_CHECK(fallback != nullptr);
  fallback_ = std::move(fallback);
}

bool PerTaskModel::stationary() const {
  for (const auto& model : models_) {
    if (!model->stationary()) {
      return false;
    }
  }
  return fallback_->stationary();
}

std::optional<double> PerTaskModel::constant_fraction() const {
  // Constant only when every delegate agrees on one value (the common case
  // is scenario files giving every task const(1)).
  std::optional<double> common = fallback_->constant_fraction();
  if (!common.has_value()) {
    return std::nullopt;
  }
  for (const auto& model : models_) {
    std::optional<double> f = model->constant_fraction();
    if (!f.has_value() || *f != *common) {
      return std::nullopt;
    }
  }
  return common;
}

double PerTaskModel::DrawFraction(int task_id, int64_t invocation, Pcg32& rng) {
  RTDVS_CHECK_GE(task_id, 0);
  if (static_cast<size_t>(task_id) >= models_.size()) {
    return fallback_->DrawFraction(task_id, invocation, rng);
  }
  return models_[static_cast<size_t>(task_id)]->DrawFraction(task_id, invocation, rng);
}

TableFractionModel::TableFractionModel(std::vector<std::vector<double>> fractions_by_task)
    : fractions_by_task_(std::move(fractions_by_task)) {
  for (const auto& row : fractions_by_task_) {
    RTDVS_CHECK(!row.empty());
    for (double f : row) {
      RTDVS_CHECK_GT(f, 0.0);
      RTDVS_CHECK_LE(f, 1.0);
    }
  }
}

std::string TableFractionModel::name() const { return "table"; }

bool TableFractionModel::stationary() const {
  // A single-column row repeats the same fraction forever; any longer row
  // makes early invocations differ from the steady state.
  for (const auto& row : fractions_by_task_) {
    if (row.size() > 1) {
      return false;
    }
  }
  return true;
}

double TableFractionModel::DrawFraction(int task_id, int64_t invocation, Pcg32& rng) {
  (void)rng;
  RTDVS_CHECK_GE(task_id, 0);
  RTDVS_CHECK_LT(static_cast<size_t>(task_id), fractions_by_task_.size());
  const auto& row = fractions_by_task_[static_cast<size_t>(task_id)];
  size_t index = std::min(static_cast<size_t>(invocation), row.size() - 1);
  return row[index];
}

}  // namespace rtdvs
