#include "src/rt/task.h"

#include <algorithm>
#include <numeric>

#include "src/util/check.h"
#include "src/util/strings.h"

namespace rtdvs {

TaskSet::TaskSet(std::vector<Task> tasks) {
  for (auto& task : tasks) {
    AddTask(std::move(task));
  }
}

int TaskSet::AddTask(Task task) {
  RTDVS_CHECK_GT(task.period_ms, 0.0) << "task " << task.name;
  RTDVS_CHECK_GT(task.wcet_ms, 0.0) << "task " << task.name;
  RTDVS_CHECK_LE(task.wcet_ms, task.period_ms)
      << "task " << task.name << ": WCET must not exceed period";
  RTDVS_CHECK_GE(task.phase_ms, 0.0) << "task " << task.name;
  if (task.name.empty()) {
    task.name = StrFormat("T%zu", tasks_.size() + 1);
  }
  tasks_.push_back(std::move(task));
  return static_cast<int>(tasks_.size()) - 1;
}

double TaskSet::TotalUtilization() const {
  double total = 0;
  for (const auto& task : tasks_) {
    total += task.utilization();
  }
  return total;
}

std::vector<int> TaskSet::IdsByPeriod() const {
  std::vector<int> ids(tasks_.size());
  std::iota(ids.begin(), ids.end(), 0);
  std::stable_sort(ids.begin(), ids.end(), [this](int a, int b) {
    return tasks_[static_cast<size_t>(a)].period_ms < tasks_[static_cast<size_t>(b)].period_ms;
  });
  return ids;
}

TaskSet TaskSet::PaperExample() {
  return TaskSet({{"T1", 8.0, 3.0, 0.0}, {"T2", 10.0, 3.0, 0.0}, {"T3", 14.0, 1.0, 0.0}});
}

std::string TaskSet::ToString() const {
  std::string out = StrFormat("TaskSet(n=%d, U=%.4f)", size(), TotalUtilization());
  for (const auto& task : tasks_) {
    out += StrFormat(" %s(C=%.4g,P=%.4g)", task.name.c_str(), task.wcet_ms, task.period_ms);
  }
  return out;
}

}  // namespace rtdvs
