// Periodic real-time task model (Liu & Layland, as used in §2.2 of the
// paper): each task i has a period P_i and a worst-case computation time C_i
// specified at the maximum processor frequency. The relative deadline equals
// the period, tasks are independent, and invocations are released
// back-to-back every P_i milliseconds starting at time 0 (plus an optional
// phase for dynamically admitted tasks).
#ifndef SRC_RT_TASK_H_
#define SRC_RT_TASK_H_

#include <string>
#include <vector>

namespace rtdvs {

struct Task {
  std::string name;
  // Period (= relative deadline) in milliseconds.
  double period_ms = 0;
  // Worst-case computation time in milliseconds at maximum frequency.
  double wcet_ms = 0;
  // Release offset of the first invocation (0 for the classic model; used by
  // the admission controller to defer a new task's first release, §4.3).
  double phase_ms = 0;

  double utilization() const { return wcet_ms / period_ms; }
};

// An immutable set of periodic tasks. Task ids are indices into the set.
class TaskSet {
 public:
  TaskSet() = default;
  explicit TaskSet(std::vector<Task> tasks);

  // Validates and appends; returns the new task's id.
  int AddTask(Task task);

  int size() const { return static_cast<int>(tasks_.size()); }
  bool empty() const { return tasks_.empty(); }
  const Task& task(int id) const { return tasks_[static_cast<size_t>(id)]; }
  const std::vector<Task>& tasks() const { return tasks_; }

  // Sum of C_i / P_i over all tasks.
  double TotalUtilization() const;

  // Task ids sorted by period ascending (rate-monotonic priority order);
  // ties broken by id. Recomputed on each call — task sets are small.
  std::vector<int> IdsByPeriod() const;

  // The paper's running example (Table 2): C = {3, 3, 1}, P = {8, 10, 14}.
  static TaskSet PaperExample();

  std::string ToString() const;

 private:
  std::vector<Task> tasks_;
};

}  // namespace rtdvs

#endif  // SRC_RT_TASK_H_
