// Models of the *actual* computation a task invocation consumes, as a
// fraction of its specified worst case (§3.1: "a constant (e.g. 0.9 ...)
// or a random function (e.g. uniformly-distributed random multiplier for
// each invocation)").
#ifndef SRC_RT_EXEC_TIME_MODEL_H_
#define SRC_RT_EXEC_TIME_MODEL_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/util/random.h"

namespace rtdvs {

class ExecTimeModel {
 public:
  virtual ~ExecTimeModel() = default;
  virtual std::string name() const = 0;

  // Fraction of WCET in (0, 1] required by invocation `invocation` of task
  // `task_id`. May consume randomness from `rng`.
  virtual double DrawFraction(int task_id, int64_t invocation, Pcg32& rng) = 0;

  // When every draw returns the same value regardless of task, invocation
  // and RNG, that value; otherwise nullopt. Hosts cache it once per run to
  // skip the virtual draw on the release hot path — bit-identical because
  // the model's DrawFraction returns exactly this value and consumes no
  // randomness.
  virtual std::optional<double> constant_fraction() const {
    return std::nullopt;
  }

  // True when DrawFraction is a pure function of task_id alone: identical
  // for every invocation of a task and consuming no randomness. This is the
  // precondition for the simulator's hyperperiod memoization (the workload
  // over cycle k+1 must repeat cycle k exactly); see
  // src/sim/simulator.h FastPathOptions. Conservative false by default.
  virtual bool stationary() const { return false; }
};

// Every invocation uses exactly `fraction` of its worst case (Fig 12 uses
// 1.0, 0.9, 0.7 and 0.5).
class ConstantFractionModel : public ExecTimeModel {
 public:
  explicit ConstantFractionModel(double fraction);
  std::string name() const override;
  double DrawFraction(int task_id, int64_t invocation, Pcg32& rng) override;
  std::optional<double> constant_fraction() const override { return fraction_; }
  bool stationary() const override { return true; }

 private:
  double fraction_;
};

// Uniform in (lo, hi]; the paper's Fig 13 uses (0, 1].
class UniformFractionModel : public ExecTimeModel {
 public:
  UniformFractionModel(double lo, double hi);
  std::string name() const override;
  double DrawFraction(int task_id, int64_t invocation, Pcg32& rng) override;

 private:
  double lo_;
  double hi_;
};

// Mostly-short with occasional near-worst-case spikes; models control loops
// that rarely take slow paths (extension used in ablation benches).
class BimodalFractionModel : public ExecTimeModel {
 public:
  // With probability `spike_probability` draw uniform in (0.85, 1.0],
  // otherwise uniform in (0, `typical_fraction`].
  BimodalFractionModel(double typical_fraction, double spike_probability);
  std::string name() const override;
  double DrawFraction(int task_id, int64_t invocation, Pcg32& rng) override;

 private:
  double typical_fraction_;
  double spike_probability_;
};

// Decorator modelling the paper's §4.3 observation 1: the very first
// invocation runs "cold" (cache/TLB/page-fault overheads) and consumes
// `cold_factor` times what the inner model draws, capped at 1.0 of WCET by
// default (set allow_overrun to let it exceed the bound like the real
// prototype did).
class ColdStartModel : public ExecTimeModel {
 public:
  ColdStartModel(std::unique_ptr<ExecTimeModel> inner, double cold_factor,
                 bool allow_overrun = false);
  std::string name() const override;
  double DrawFraction(int task_id, int64_t invocation, Pcg32& rng) override;

 private:
  std::unique_ptr<ExecTimeModel> inner_;
  double cold_factor_;
  bool allow_overrun_;
};

// Dispatches to a different model per task id (used by the scenario-file
// front end, where each task declares its own behaviour).
class PerTaskModel : public ExecTimeModel {
 public:
  explicit PerTaskModel(std::vector<std::unique_ptr<ExecTimeModel>> models);
  std::string name() const override;
  double DrawFraction(int task_id, int64_t invocation, Pcg32& rng) override;
  // Stationary when every per-task model (and the fallback) is; the draws
  // still differ BETWEEN tasks, so constant_fraction() stays nullopt unless
  // delegation is trivial.
  bool stationary() const override;
  std::optional<double> constant_fraction() const override;

  // Tasks beyond the configured list (e.g. an auto-appended server task)
  // fall back to this; the default is "always worst case".
  void set_fallback(std::unique_ptr<ExecTimeModel> fallback);

 private:
  std::vector<std::unique_ptr<ExecTimeModel>> models_;
  std::unique_ptr<ExecTimeModel> fallback_;
};

// Fixed per-task, per-invocation table; used by the golden tests to replay
// Table 3 of the paper exactly. Entries are fractions of WCET; invocations
// beyond the table repeat the last column.
class TableFractionModel : public ExecTimeModel {
 public:
  explicit TableFractionModel(std::vector<std::vector<double>> fractions_by_task);
  std::string name() const override;
  double DrawFraction(int task_id, int64_t invocation, Pcg32& rng) override;
  bool stationary() const override;

 private:
  std::vector<std::vector<double>> fractions_by_task_;
};

}  // namespace rtdvs

#endif  // SRC_RT_EXEC_TIME_MODEL_H_
