// Aperiodic workload support (footnote 1 of the paper: "aperiodic and
// sporadic tasks can be handled by a periodic or deferred server [16]. For
// non-real-time tasks, too, we can provision processor time using a similar
// periodic server approach.").
//
// An aperiodic job arrives at some instant and needs a given amount of work
// (in max-frequency milliseconds); it has no deadline — the metric is
// response time. A bandwidth-preserving SERVER task, which the rest of the
// system treats as an ordinary periodic task (period P_s, budget C_s),
// serves the arrival queue:
//
//   * kPolling  — the classic periodic (polling) server: the budget is
//     replenished at each release; the server runs at its task's priority
//     and SUSPENDS (forfeiting remaining budget) the moment the queue is
//     empty. Work arriving after that waits for the next period.
//   * kDeferrable — the deferrable server: the budget is replenished each
//     period but RETAINED while the queue is empty, so an arrival mid-
//     period is served immediately (at the server's priority) as long as
//     budget remains. Better response times, slightly more interference.
//
// Because the server is presented to schedulers, schedulability tests and
// DVS policies as a periodic task of utilization C_s/P_s, every RT-DVS
// guarantee for the periodic tasks carries over unchanged. (For the
// deferrable server under RM this is a mild approximation — the exact DS
// interference bound is stricter — which is why the polling server is the
// default and the property tests run both.)
#ifndef SRC_RT_APERIODIC_H_
#define SRC_RT_APERIODIC_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "src/util/random.h"

namespace rtdvs {

enum class ServerKind {
  kNone,
  kPolling,
  kDeferrable,
  // Constant Bandwidth Server (Abeni & Buttazzo, RTSS'98): an EDF-native
  // server whose deadline is postponed by one period whenever its budget
  // exhausts, provably never demanding more than C_s/P_s of the processor
  // in ANY window. It fixes the deferrable server's back-to-back
  // interference (see bench_ablation_server) while keeping its immediate
  // response to arrivals.
  kCbs,
};

// One aperiodic request.
struct AperiodicJob {
  double arrival_ms = 0;
  double service_work = 0;     // total demand, max-frequency ms
  double remaining_work = 0;   // not yet served
  bool completed = false;
  double completion_ms = 0;
};

// Arrival process: Poisson arrivals with (optionally clipped) exponential
// service demand, or a fixed replayable list for tests.
struct AperiodicArrivalConfig {
  double mean_interarrival_ms = 50.0;
  double mean_service_ms = 2.0;
  double max_service_ms = 10.0;  // clip so one request cannot starve others
  // When nonempty, replay exactly these (arrival, work) pairs and ignore
  // the stochastic parameters.
  std::vector<AperiodicJob> fixed_arrivals;
};

struct AperiodicServerConfig {
  ServerKind kind = ServerKind::kNone;
  double period_ms = 0;   // P_s
  double budget_ms = 0;   // C_s at maximum frequency
  AperiodicArrivalConfig arrivals;
};

struct AperiodicStats {
  int64_t arrivals = 0;
  int64_t completions = 0;
  double served_work = 0;
  double total_response_ms = 0;
  double max_response_ms = 0;
  double backlog_work = 0;  // unserved demand at the horizon

  double MeanResponseMs() const {
    return completions == 0 ? 0.0 : total_response_ms / static_cast<double>(completions);
  }
};

// Queue + budget state machine used by the simulator. Time advances only
// through the three mutators; the class is engine-agnostic.
class AperiodicServerState {
 public:
  AperiodicServerState(const AperiodicServerConfig& config, uint64_t seed);

  const AperiodicServerConfig& config() const { return config_; }

  // Next arrival instant, or +inf when the fixed list is exhausted.
  double NextArrivalMs() const { return next_arrival_ms_; }
  // Moves arrivals at or before now_ms into the queue.
  void AdmitArrivals(double now_ms);

  // Replenishes the budget (called at each server release).
  void Replenish() { budget_remaining_ = config_.budget_ms; }

  // Work the server could execute right now.
  double ServableWork() const;
  bool QueueEmpty() const { return queue_.empty(); }
  double budget_remaining() const { return budget_remaining_; }

  // Consumes `work` from the budget and the queue head(s), FIFO. Jobs whose
  // demand is fully served complete; `segment_end_ms` and `frequency` let
  // the per-job completion instants be interpolated inside the segment
  // (the caller executed `work` ending at segment_end_ms at `frequency`).
  void Execute(double work, double segment_end_ms, double frequency);

  // Polling server: called when the engine observes the queue empty while
  // the server holds the processor — remaining budget is forfeited.
  void ForfeitBudget() { budget_remaining_ = 0; }

  // --- CBS bookkeeping (kind == kCbs only) ---
  // Wake rule, applied when work arrives while the server is idle: if the
  // retained budget would exceed the bandwidth available before the current
  // server deadline, reset deadline = now + P_s with a full budget;
  // otherwise keep both. Returns the (possibly new) server deadline.
  double CbsWake(double now_ms);
  // Exhaustion rule: replenish the budget and postpone the deadline by one
  // period. Returns the new deadline.
  double CbsPostpone();
  double cbs_deadline() const { return cbs_deadline_ms_; }

  const AperiodicStats& stats() const { return stats_; }
  // Folds the current backlog into the stats (call once, at the horizon).
  void FinalizeStats();

 private:
  void ScheduleNextArrival();

  AperiodicServerConfig config_;
  Pcg32 rng_;
  std::deque<AperiodicJob> queue_;
  size_t fixed_index_ = 0;
  double next_arrival_ms_ = 0;
  double budget_remaining_ = 0;
  double cbs_deadline_ms_ = 0;
  AperiodicStats stats_;
};

}  // namespace rtdvs

#endif  // SRC_RT_APERIODIC_H_
