#include "src/rt/schedulability.h"

#include <cmath>

#include "src/util/check.h"
#include "src/util/time_eps.h"

namespace rtdvs {

namespace {

// ceil(a/b) with a small tolerance so that exact multiples (10/5) do not
// round up to one extra invocation due to floating-point noise.
double CeilDiv(double a, double b) { return std::ceil(a / b - 1e-9); }

}  // namespace

bool EdfSchedulable(const TaskSet& tasks, double alpha) {
  RTDVS_CHECK_GT(alpha, 0.0);
  return ApproxLe(tasks.TotalUtilization(), alpha, 1e-9);
}

bool RmSchedulableSufficient(const TaskSet& tasks, double alpha) {
  RTDVS_CHECK_GT(alpha, 0.0);
  std::vector<int> order = tasks.IdsByPeriod();
  for (size_t i = 0; i < order.size(); ++i) {
    const Task& ti = tasks.task(order[i]);
    double demand = 0;
    for (size_t j = 0; j <= i; ++j) {
      const Task& tj = tasks.task(order[j]);
      demand += CeilDiv(ti.period_ms, tj.period_ms) * tj.wcet_ms;
    }
    if (!ApproxLe(demand, alpha * ti.period_ms, 1e-9)) {
      return false;
    }
  }
  return true;
}

std::optional<double> RmResponseTime(const TaskSet& tasks, int id, double alpha) {
  RTDVS_CHECK_GT(alpha, 0.0);
  const Task& task = tasks.task(id);
  std::vector<int> order = tasks.IdsByPeriod();
  // Higher-priority tasks: those strictly before `id` in RM order.
  std::vector<int> higher;
  for (int other : order) {
    if (other == id) {
      break;
    }
    higher.push_back(other);
  }
  double response = task.wcet_ms / alpha;
  for (int iter = 0; iter < 1000; ++iter) {
    double next = task.wcet_ms / alpha;
    for (int j : higher) {
      const Task& tj = tasks.task(j);
      next += CeilDiv(response, tj.period_ms) * tj.wcet_ms / alpha;
    }
    if (next > task.period_ms + kTimeEpsMs) {
      return std::nullopt;  // already past the deadline; diverging
    }
    if (ApproxEq(next, response, 1e-9)) {
      return next;
    }
    response = next;
  }
  return std::nullopt;  // did not converge within the deadline
}

bool RmSchedulableExact(const TaskSet& tasks, double alpha) {
  for (int id = 0; id < tasks.size(); ++id) {
    auto response = RmResponseTime(tasks, id, alpha);
    if (!response.has_value() ||
        !ApproxLe(*response, tasks.task(id).period_ms, 1e-9)) {
      return false;
    }
  }
  return true;
}

std::optional<OperatingPoint> StaticScalingPoint(const TaskSet& tasks,
                                                 const MachineSpec& machine,
                                                 SchedulerKind kind, bool exact_rm) {
  for (const auto& point : machine.points()) {
    bool ok = false;
    switch (kind) {
      case SchedulerKind::kEdf:
        ok = EdfSchedulable(tasks, point.frequency);
        break;
      case SchedulerKind::kRm:
        ok = exact_rm ? RmSchedulableExact(tasks, point.frequency)
                      : RmSchedulableSufficient(tasks, point.frequency);
        break;
    }
    if (ok) {
      return point;
    }
  }
  return std::nullopt;
}

double MinimalScalingFactor(const TaskSet& tasks, SchedulerKind kind, bool exact_rm) {
  if (kind == SchedulerKind::kEdf) {
    return tasks.TotalUtilization();
  }
  auto test = [&](double alpha) {
    return exact_rm ? RmSchedulableExact(tasks, alpha)
                    : RmSchedulableSufficient(tasks, alpha);
  };
  if (!test(1.0)) {
    // Not schedulable even at full speed; report >1 so callers can detect it.
    return 1.0 + kTimeEpsMs;
  }
  double lo = tasks.TotalUtilization();  // alpha below utilization can never pass
  double hi = 1.0;
  if (test(lo)) {
    return lo;
  }
  for (int iter = 0; iter < 60; ++iter) {
    double mid = 0.5 * (lo + hi);
    if (test(mid)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

}  // namespace rtdvs
