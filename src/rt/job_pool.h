// Per-run arena for job storage (ROADMAP hot-path item). A simulation run
// grows one std::vector<Job> from empty; at thousands of simulations per
// second (sweep shards run ~300 sims each) the re-growth malloc traffic is
// measurable in the step profile. A JobPool recycles the largest block a
// thread has seen: a run borrows storage with Acquire, uses it as an
// ordinary vector (push_back/erase exactly as before — results are
// bit-identical because capacity is not observable), and returns it with
// Release.
//
// Pools are NOT thread-safe: use one pool per worker thread. The sweep
// runner wires the calling thread's pool into SimOptions::job_pool via
// ThreadLocalJobPool(); standalone Simulator users may leave the option
// null and keep the plain per-run vector.
#ifndef SRC_RT_JOB_POOL_H_
#define SRC_RT_JOB_POOL_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "src/rt/job.h"

namespace rtdvs {

class JobPool {
 public:
  // Returns an empty vector with at least `reserve_hint` capacity — the
  // pooled block when one is available, a fresh allocation otherwise.
  std::vector<Job> Acquire(size_t reserve_hint) {
    std::vector<Job> out = std::move(spare_);
    spare_ = std::vector<Job>();
    out.clear();
    if (out.capacity() < reserve_hint) {
      out.reserve(reserve_hint);
    }
    return out;
  }

  // Returns storage to the pool; the larger of (pooled, returned) block is
  // kept so capacity ratchets up to the thread's high-water mark.
  void Release(std::vector<Job>&& jobs) {
    if (jobs.capacity() > spare_.capacity()) {
      spare_ = std::move(jobs);
      spare_.clear();
    }
  }

  size_t pooled_capacity() const { return spare_.capacity(); }

 private:
  std::vector<Job> spare_;
};

// The calling thread's pool (lazily constructed, destroyed with the
// thread). Sweep shards run many simulations back to back on one worker
// thread; routing them through this pool makes the job vector's heap block
// survive across runs.
inline JobPool& ThreadLocalJobPool() {
  thread_local JobPool pool;
  return pool;
}

}  // namespace rtdvs

#endif  // SRC_RT_JOB_POOL_H_
