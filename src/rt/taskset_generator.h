// Random task-set generation following §3.1 of the paper:
//
//   "Each task has an equal probability of having a short (1–10ms), medium
//    (10–100ms), or long (100–1000ms) period. Within each range, task
//    periods are uniformly distributed. ... The computation requirements of
//    the tasks are assigned randomly using a similar 3 range uniform
//    distribution. Finally, the task computation requirements are scaled by
//    a constant chosen such that the sum of the utilizations of the tasks in
//    the task set reaches a desired value."
//
// Periods are snapped to a 1 microsecond grid so release times are exact in
// double arithmetic. Task sets where scaling leaves some C_i > P_i (which
// the classic model forbids) are rejected and redrawn.
#ifndef SRC_RT_TASKSET_GENERATOR_H_
#define SRC_RT_TASKSET_GENERATOR_H_

#include "src/rt/task.h"
#include "src/util/random.h"

namespace rtdvs {

struct TaskSetGeneratorOptions {
  int num_tasks = 8;
  double target_utilization = 0.5;
  // The three period ranges, in ms.
  double short_lo_ms = 1.0, short_hi_ms = 10.0;
  double medium_lo_ms = 10.0, medium_hi_ms = 100.0;
  double long_lo_ms = 100.0, long_hi_ms = 1000.0;
  // Give up after this many rejected draws (then abort loudly).
  int max_attempts = 1000;
};

class TaskSetGenerator {
 public:
  explicit TaskSetGenerator(TaskSetGeneratorOptions options = {});

  // Draws one task set with total worst-case utilization equal to
  // options.target_utilization (within rounding of the 1 microsecond grid).
  TaskSet Generate(Pcg32& rng) const;

  const TaskSetGeneratorOptions& options() const { return options_; }

 private:
  TaskSetGeneratorOptions options_;
};

// Alternative generator (extension): UUniFast utilization split (Bini &
// Buttazzo) with the paper's period distribution; produces unbiased
// per-task utilizations and never needs rejection. Used by ablation benches
// to show results are not an artifact of the generation method.
TaskSet GenerateUUniFast(int num_tasks, double target_utilization, Pcg32& rng);

}  // namespace rtdvs

#endif  // SRC_RT_TASKSET_GENERATOR_H_
