// A job is one released invocation of a periodic task.
#ifndef SRC_RT_JOB_H_
#define SRC_RT_JOB_H_

#include <cstdint>

namespace rtdvs {

struct Job {
  int task_id = -1;
  // Run-unique job id, assigned at creation by hosts that need to refer to
  // a job after it may have moved or died (e.g. lazy invalidation of queued
  // deadline events). 0 = unassigned.
  uint64_t uid = 0;
  // 0-based invocation index of this task.
  int64_t invocation = 0;
  double release_ms = 0;
  // Absolute deadline = release + period.
  double deadline_ms = 0;
  // Worst-case work (C_i), in max-frequency milliseconds.
  double wcet_work = 0;
  // Actual work this invocation will require (drawn from the exec-time
  // model; unknown to the scheduler/policy until completion).
  double actual_work = 0;
  // Work executed so far.
  double executed_work = 0;
  bool finished = false;
  // A suspended job is not runnable (used by bandwidth-preserving servers
  // holding budget with an empty queue); schedulers skip it.
  bool suspended = false;
  // Set when the deadline passed before completion.
  bool missed = false;
  // Completion timestamp, valid when finished.
  double completion_ms = 0;

  double RemainingActualWork() const { return actual_work - executed_work; }
  // Remaining budget against the worst case; what an online policy can
  // observe (it never knows actual_work in advance).
  double RemainingWorstCaseWork() const {
    double rem = wcet_work - executed_work;
    return rem > 0 ? rem : 0;
  }
};

}  // namespace rtdvs

#endif  // SRC_RT_JOB_H_
