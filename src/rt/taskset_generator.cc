#include "src/rt/taskset_generator.h"

#include <cmath>

#include "src/util/check.h"
#include "src/util/strings.h"

namespace rtdvs {

namespace {

// Smallest WCET we accept (1 ns); below this, double noise in the simulator
// dominates and the task is physically meaningless.
constexpr double kMinWcetMs = 1e-6;

double DrawThreeRange(Pcg32& rng, const TaskSetGeneratorOptions& opt) {
  switch (rng.NextBounded(3)) {
    case 0:
      return rng.UniformDouble(opt.short_lo_ms, opt.short_hi_ms);
    case 1:
      return rng.UniformDouble(opt.medium_lo_ms, opt.medium_hi_ms);
    default:
      return rng.UniformDouble(opt.long_lo_ms, opt.long_hi_ms);
  }
}

// Snap to the 1 microsecond grid; releases then stay exact in doubles.
double SnapToMicroseconds(double ms) { return std::round(ms * 1000.0) / 1000.0; }

}  // namespace

TaskSetGenerator::TaskSetGenerator(TaskSetGeneratorOptions options)
    : options_(options) {
  RTDVS_CHECK_GT(options_.num_tasks, 0);
  RTDVS_CHECK_GT(options_.target_utilization, 0.0);
  // Up to one full core per task: multiprocessor sweeps target U > 1 across
  // M cores, and the rejection loop in Generate enforces per-task u <= 1.
  RTDVS_CHECK_LE(options_.target_utilization,
                 static_cast<double>(options_.num_tasks));
}

TaskSet TaskSetGenerator::Generate(Pcg32& rng) const {
  for (int attempt = 0; attempt < options_.max_attempts; ++attempt) {
    int n = options_.num_tasks;
    std::vector<double> periods(static_cast<size_t>(n));
    std::vector<double> raw_compute(static_cast<size_t>(n));
    double raw_utilization = 0;
    for (int i = 0; i < n; ++i) {
      periods[i] = SnapToMicroseconds(DrawThreeRange(rng, options_));
      raw_compute[i] = DrawThreeRange(rng, options_);
      raw_utilization += raw_compute[i] / periods[i];
    }
    double scale = options_.target_utilization / raw_utilization;

    bool valid = true;
    TaskSet set;
    for (int i = 0; i < n && valid; ++i) {
      double wcet = raw_compute[i] * scale;
      if (wcet > periods[i] || wcet < kMinWcetMs) {
        valid = false;
        break;
      }
      set.AddTask({StrFormat("T%d", i + 1), periods[i], wcet, 0.0});
    }
    if (valid) {
      return set;
    }
  }
  RTDVS_CHECK(false) << "failed to generate a valid task set after "
                     << options_.max_attempts << " attempts (n=" << options_.num_tasks
                     << ", U=" << options_.target_utilization << ")";
  return TaskSet();
}

TaskSet GenerateUUniFast(int num_tasks, double target_utilization, Pcg32& rng) {
  RTDVS_CHECK_GT(num_tasks, 0);
  RTDVS_CHECK_GT(target_utilization, 0.0);
  RTDVS_CHECK_LE(target_utilization, 1.0);
  TaskSetGeneratorOptions opt;  // reuse the paper's period distribution
  // Bini & Buttazzo's UUniFast: recursively split the utilization budget.
  std::vector<double> utils(static_cast<size_t>(num_tasks));
  double remaining = target_utilization;
  for (int i = 0; i < num_tasks - 1; ++i) {
    double next = remaining * std::pow(rng.NextDouble(),
                                       1.0 / static_cast<double>(num_tasks - 1 - i));
    utils[i] = remaining - next;
    remaining = next;
  }
  utils[static_cast<size_t>(num_tasks) - 1] = remaining;

  TaskSet set;
  for (int i = 0; i < num_tasks; ++i) {
    double period = SnapToMicroseconds(DrawThreeRange(rng, opt));
    double wcet = std::max(utils[i] * period, 1e-6);
    set.AddTask({StrFormat("T%d", i + 1), period, wcet, 0.0});
  }
  return set;
}

}  // namespace rtdvs
