// Schedulability tests under frequency scaling (Figure 1 of the paper).
//
// Scaling the clock by factor alpha in (0, 1] stretches every worst-case
// computation time to C_i / alpha while periods are unaffected, so each test
// takes alpha and checks the scaled task set.
#ifndef SRC_RT_SCHEDULABILITY_H_
#define SRC_RT_SCHEDULABILITY_H_

#include <optional>

#include "src/cpu/machine_spec.h"
#include "src/rt/scheduler.h"
#include "src/rt/task.h"

namespace rtdvs {

// EDF, exact (necessary and sufficient): sum_i C_i/P_i <= alpha.
bool EdfSchedulable(const TaskSet& tasks, double alpha = 1.0);

// RM, the sufficient ceiling-based test the paper scales in Figure 1:
// for every task i (by period order), the worst-case demand of tasks with
// priority >= i within P_i fits:  forall i: sum_{j<=i} ceil(P_i/P_j)*C_j <= alpha*P_i.
bool RmSchedulableSufficient(const TaskSet& tasks, double alpha = 1.0);

// RM, exact response-time analysis (Lehoczky/Audsley; our extension beyond
// the paper): fixed-point iteration R_i = C_i/alpha + sum_{j higher}
// ceil(R_i/P_j) * C_j/alpha, schedulable iff R_i <= P_i for all i.
bool RmSchedulableExact(const TaskSet& tasks, double alpha = 1.0);

// Worst-case response time of task `id` under RM at scaling alpha, or
// nullopt when the iteration exceeds the period (unschedulable).
std::optional<double> RmResponseTime(const TaskSet& tasks, int id, double alpha = 1.0);

// Static voltage scaling (§2.3): the lowest operating point at which the
// given test admits the task set, or nullopt if even full speed fails.
// `exact_rm` selects response-time analysis instead of the paper's
// sufficient test (ablation).
std::optional<OperatingPoint> StaticScalingPoint(const TaskSet& tasks,
                                                 const MachineSpec& machine,
                                                 SchedulerKind kind,
                                                 bool exact_rm = false);

// The minimal feasible alpha itself (continuous, before snapping to a
// machine's table): EDF -> total utilization; RM -> smallest alpha passing
// the chosen test (found by binary search on the monotone test).
double MinimalScalingFactor(const TaskSet& tasks, SchedulerKind kind,
                            bool exact_rm = false);

}  // namespace rtdvs

#endif  // SRC_RT_SCHEDULABILITY_H_
