#include "src/rt/aperiodic.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/util/check.h"
#include "src/util/time_eps.h"

namespace rtdvs {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

AperiodicServerState::AperiodicServerState(const AperiodicServerConfig& config,
                                           uint64_t seed)
    : config_(config), rng_(seed) {
  RTDVS_CHECK(config_.kind != ServerKind::kNone);
  RTDVS_CHECK_GT(config_.period_ms, 0.0);
  RTDVS_CHECK_GT(config_.budget_ms, 0.0);
  RTDVS_CHECK_LE(config_.budget_ms, config_.period_ms);
  if (config_.arrivals.fixed_arrivals.empty()) {
    RTDVS_CHECK_GT(config_.arrivals.mean_interarrival_ms, 0.0);
    RTDVS_CHECK_GT(config_.arrivals.mean_service_ms, 0.0);
    RTDVS_CHECK_GE(config_.arrivals.max_service_ms, config_.arrivals.mean_service_ms);
    next_arrival_ms_ = 0;
    ScheduleNextArrival();
  } else {
    for (size_t i = 1; i < config_.arrivals.fixed_arrivals.size(); ++i) {
      RTDVS_CHECK_GE(config_.arrivals.fixed_arrivals[i].arrival_ms,
                     config_.arrivals.fixed_arrivals[i - 1].arrival_ms)
          << "fixed arrivals must be time-ordered";
    }
    next_arrival_ms_ = config_.arrivals.fixed_arrivals.front().arrival_ms;
  }
  budget_remaining_ = config_.budget_ms;
}

void AperiodicServerState::ScheduleNextArrival() {
  // Exponential interarrival: -mean * ln(1 - U), U uniform in [0, 1).
  double u = rng_.NextDouble();
  next_arrival_ms_ += -config_.arrivals.mean_interarrival_ms * std::log1p(-u);
}

void AperiodicServerState::AdmitArrivals(double now_ms) {
  const auto& fixed = config_.arrivals.fixed_arrivals;
  if (!fixed.empty()) {
    while (fixed_index_ < fixed.size() &&
           fixed[fixed_index_].arrival_ms <= now_ms + kTimeEpsMs) {
      AperiodicJob job = fixed[fixed_index_];
      RTDVS_CHECK_GT(job.service_work, 0.0);
      job.remaining_work = job.service_work;
      queue_.push_back(job);
      ++stats_.arrivals;
      ++fixed_index_;
    }
    next_arrival_ms_ = fixed_index_ < fixed.size() ? fixed[fixed_index_].arrival_ms : kInf;
    return;
  }
  while (next_arrival_ms_ <= now_ms + kTimeEpsMs) {
    AperiodicJob job;
    job.arrival_ms = next_arrival_ms_;
    double u = rng_.NextDouble();
    job.service_work = std::min(-config_.arrivals.mean_service_ms * std::log1p(-u),
                                config_.arrivals.max_service_ms);
    job.service_work = std::max(job.service_work, 1e-6);
    job.remaining_work = job.service_work;
    queue_.push_back(job);
    ++stats_.arrivals;
    ScheduleNextArrival();
  }
}

double AperiodicServerState::ServableWork() const {
  double queued = 0;
  for (const auto& job : queue_) {
    queued += job.remaining_work;
  }
  return std::min(queued, budget_remaining_);
}

void AperiodicServerState::Execute(double work, double segment_end_ms,
                                   double frequency) {
  RTDVS_CHECK_GE(work, 0.0);
  RTDVS_CHECK_LE(work, ServableWork() + kWorkEps);
  RTDVS_CHECK_GT(frequency, 0.0);
  budget_remaining_ = std::max(0.0, budget_remaining_ - work);
  stats_.served_work += work;
  // Drain FIFO; completions are interpolated backwards from segment_end_ms.
  double left = work;
  while (left > kWorkEps && !queue_.empty()) {
    AperiodicJob& head = queue_.front();
    if (head.remaining_work <= left + kWorkEps) {
      left -= head.remaining_work;
      head.remaining_work = 0;
      head.completed = true;
      // The head finished `left` work-units before the segment end.
      head.completion_ms = segment_end_ms - left / frequency;
      double response = head.completion_ms - head.arrival_ms;
      ++stats_.completions;
      stats_.total_response_ms += response;
      stats_.max_response_ms = std::max(stats_.max_response_ms, response);
      queue_.pop_front();
    } else {
      head.remaining_work -= left;
      left = 0;
    }
  }
}

double AperiodicServerState::CbsWake(double now_ms) {
  RTDVS_CHECK(config_.kind == ServerKind::kCbs);
  const double bandwidth = config_.budget_ms / config_.period_ms;
  if (budget_remaining_ >= (cbs_deadline_ms_ - now_ms) * bandwidth) {
    cbs_deadline_ms_ = now_ms + config_.period_ms;
    budget_remaining_ = config_.budget_ms;
  }
  return cbs_deadline_ms_;
}

double AperiodicServerState::CbsPostpone() {
  RTDVS_CHECK(config_.kind == ServerKind::kCbs);
  budget_remaining_ = config_.budget_ms;
  cbs_deadline_ms_ += config_.period_ms;
  return cbs_deadline_ms_;
}

void AperiodicServerState::FinalizeStats() {
  stats_.backlog_work = 0;
  for (const auto& job : queue_) {
    stats_.backlog_work += job.remaining_work;
  }
}

}  // namespace rtdvs
